"""Interpreting learned concepts (Chapter 5 future work).

The thesis: "we have not been able to interpret those output values in an
intuitive way.  One possible future direction would be to explore those
values in more detail, either to come up with reasonable interpretations,
or to improve the algorithm so that it gives more intuitive output values."

This module provides the two interpretation tools the data model makes
possible:

* :func:`explain_bag` — which *region* of an image the concept matched
  (the instance provenance recorded at bag-generation time names the
  region and its mirror state), with the per-instance distance profile;
* :func:`weight_saliency` — where in the ``h x h`` grid the learned weights
  put their mass (row/column marginals and the top cells), i.e. *which
  parts of the matched region* drive the similarity.

Together these answer the user-facing question the thesis could not:
"what did the system decide my concept was?"
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.concept import LearnedConcept
from repro.errors import TrainingError
from repro.imaging.features import FeatureSet


@dataclass(frozen=True)
class RegionMatch:
    """One image's best-matching region under a concept.

    Attributes:
        region_name: provenance of the winning instance (e.g.
            ``"quadrant-ne (mirrored)"``).
        distance: the winning instance's weighted distance.
        margin: runner-up distance minus winning distance; small margins
            mean the concept does not clearly prefer one region.
        ranking: all instance provenances ordered best-first.
    """

    region_name: str
    distance: float
    margin: float
    ranking: tuple[str, ...]


def explain_bag(concept: LearnedConcept, features: FeatureSet) -> RegionMatch:
    """Name the region of an image that the concept matched.

    Args:
        concept: the learned ``(t, w)``.
        features: the image's extracted feature set (with provenance).

    Raises:
        TrainingError: on a dimensionality mismatch.
    """
    distances = concept.instance_distances(features.vectors)
    order = np.argsort(distances, kind="stable")
    names = [features.sources[i].describe() for i in order]
    best = int(order[0])
    margin = (
        float(distances[order[1]] - distances[order[0]])
        if distances.size > 1
        else float("inf")
    )
    return RegionMatch(
        region_name=features.sources[best].describe(),
        distance=float(distances[best]),
        margin=margin,
        ranking=tuple(names),
    )


@dataclass(frozen=True)
class WeightSaliency:
    """Spatial structure of a concept's weight mass on the h x h grid.

    Attributes:
        row_marginals: weight mass per matrix row (top of the region first),
            normalised to sum to 1.
        col_marginals: weight mass per matrix column (left first).
        top_cells: the ``(row, col, weight)`` triples of the heaviest cells.
        concentration: fraction of total mass in the top 10% of cells — 1.0
            means a spike, ~0.1 means uniform.
    """

    row_marginals: np.ndarray
    col_marginals: np.ndarray
    top_cells: tuple[tuple[int, int, float], ...]
    concentration: float


def weight_saliency(
    concept: LearnedConcept, resolution: int | None = None, top_k: int = 5
) -> WeightSaliency:
    """Summarise where on the sampling grid the concept's weights sit.

    Args:
        concept: the learned concept; its dimensionality must be a perfect
            square (or pass ``resolution``).
        resolution: the grid side ``h``; inferred when omitted.
        top_k: how many heaviest cells to report.

    Raises:
        TrainingError: if the concept cannot be reshaped to a square grid
            or carries zero total weight.
    """
    _, w_matrix = concept.as_matrices(resolution)
    total = float(w_matrix.sum())
    if total <= 0.0:
        raise TrainingError("cannot interpret a concept with zero total weight")
    h = w_matrix.shape[0]

    flat_order = np.argsort(w_matrix, axis=None)[::-1]
    top = []
    for flat_index in flat_order[: max(1, top_k)]:
        row, col = divmod(int(flat_index), h)
        top.append((row, col, float(w_matrix[row, col])))

    n_top = max(1, (h * h) // 10)
    concentration = float(
        np.sort(w_matrix.reshape(-1))[::-1][:n_top].sum() / total
    )
    return WeightSaliency(
        row_marginals=w_matrix.sum(axis=1) / total,
        col_marginals=w_matrix.sum(axis=0) / total,
        top_cells=tuple(top),
        concentration=concentration,
    )


def consensus_region(
    concept: LearnedConcept, feature_sets: dict[str, FeatureSet]
) -> dict[str, int]:
    """Vote count of winning region names across several images.

    Useful for asking "did the positive examples all match via the same
    region?" — a strong consensus indicates the learned concept is spatially
    coherent.

    Args:
        concept: the learned concept.
        feature_sets: mapping of image id to its feature set.

    Returns:
        Mapping of region name (mirror state stripped) to win count, sorted
        by count descending.
    """
    votes: dict[str, int] = {}
    for features in feature_sets.values():
        match = explain_bag(concept, features)
        base_name = match.region_name.replace(" (mirrored)", "")
        votes[base_name] = votes.get(base_name, 0) + 1
    return dict(sorted(votes.items(), key=lambda item: (-item[1], item[0])))
