"""The Diverse Density objective (Section 2.2).

Diverse Density at a point ``t`` with per-dimension weights ``w`` is

    DD(t, w) = prod_i Pr(t | B+_i) * prod_i Pr(t | B-_i)

under the noisy-or model

    Pr(t | B+_i) = 1 - prod_j (1 - Pr(B+_ij = t))
    Pr(t | B-_i) =     prod_j (1 - Pr(B-_ij = t))
    Pr(B_ij = t) = exp(-||B_ij - t||^2_w),
    ||x - t||^2_w = sum_k w_k (x_k - t_k)^2.

We minimise the negative log, ``NLL = -log DD``, which decomposes over bags.
This module evaluates the NLL and its analytic gradients with respect to both
``t`` and ``w`` in fully vectorised form: all instances of all bags are
stacked once at construction and each evaluation costs one pass over the
stacked matrix.

Gradient derivation (used below): with ``d2_j = ||x_j - t||^2_w`` and
``p_j = exp(-d2_j)``, every bag contributes per-instance coefficients

    positive bag i:  c_j = (Q_i / P_i) * p_j / (1 - p_j),
                     Q_i = prod(1 - p_j),  P_i = 1 - Q_i
    negative bag i:  c_j = -p_j / (1 - p_j)

and then

    dNLL/dw_k = sum_j c_j (x_jk - t_k)^2
    dNLL/dt_k = 2 w_k sum_j c_j (t_k - x_jk).

The paper optimises weights through the substitution ``w_k = s_k^2`` to keep
them non-negative; :meth:`DiverseDensityObjective.value_and_grad_squared`
exposes that parametrisation (including the "alpha hack" of Section 3.6.2,
which divides the weight gradient by a constant ``alpha``).
"""

from __future__ import annotations

import numpy as np

from repro.bags.bag import BagSet
from repro.errors import TrainingError

#: Instance probabilities are clamped into [0, 1 - _P_EPS] so that a bag
#: sitting exactly on ``t`` does not produce an infinite negative-bag NLL.
_P_EPS = 1e-12
#: Bag probabilities are floored at this value before taking logs.
_LOG_FLOOR = 1e-300


class DiverseDensityObjective:
    """Vectorised noisy-or negative-log Diverse Density for one bag set.

    Args:
        bag_set: the labelled bags; must contain at least one positive bag.

    The objective is stateless after construction; it can be shared across
    restarts and schemes.
    """

    def __init__(self, bag_set: BagSet):
        bag_set.validate_for_training()
        self._n_dims = bag_set.n_dims
        self._pos_x, self._pos_bounds = bag_set.stacked(label=True)
        self._neg_x, self._neg_bounds = bag_set.stacked(label=False)
        self._n_pos_bags = len(self._pos_bounds) - 1
        self._n_neg_bags = len(self._neg_bounds) - 1
        # Map every positive instance row to its bag index for fast segment
        # products/sums via np.add.reduceat.
        self._pos_starts = self._pos_bounds[:-1]

    @property
    def n_dims(self) -> int:
        """Feature dimensionality."""
        return self._n_dims

    @property
    def n_positive_bags(self) -> int:
        """Number of positive bags in the objective."""
        return self._n_pos_bags

    @property
    def n_negative_bags(self) -> int:
        """Number of negative bags in the objective."""
        return self._n_neg_bags

    def _check(self, t: np.ndarray, w: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        t = np.asarray(t, dtype=np.float64).reshape(-1)
        w = np.asarray(w, dtype=np.float64).reshape(-1)
        if t.size != self._n_dims or w.size != self._n_dims:
            raise TrainingError(
                f"expected {self._n_dims}-dim t and w, got {t.size} and {w.size}"
            )
        if np.any(w < 0):
            raise TrainingError("weights must be non-negative")
        return t, w

    @staticmethod
    def _instance_probabilities(
        x: np.ndarray, t: np.ndarray, w: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Return (diff, p) where diff = x - t and p_j = exp(-||diff_j||^2_w)."""
        diff = x - t
        d2 = (diff * diff) @ w
        p = np.exp(-d2)
        np.clip(p, 0.0, 1.0 - _P_EPS, out=p)
        return diff, p

    def value(self, t: np.ndarray, w: np.ndarray) -> float:
        """NLL at ``(t, w)``.  Lower is better (higher Diverse Density)."""
        return self._evaluate(t, w, with_grad=False)[0]

    def value_and_grad(
        self, t: np.ndarray, w: np.ndarray
    ) -> tuple[float, np.ndarray, np.ndarray]:
        """NLL and its gradients ``(value, grad_t, grad_w)`` at ``(t, w)``."""
        value, grad_t, grad_w = self._evaluate(t, w, with_grad=True)
        assert grad_t is not None and grad_w is not None
        return value, grad_t, grad_w

    def value_and_grad_squared(
        self, t: np.ndarray, s: np.ndarray, alpha: float = 1.0
    ) -> tuple[float, np.ndarray, np.ndarray]:
        """NLL and gradients under the ``w = s**2`` parametrisation.

        Args:
            t: concept point.
            s: signed square-root weights; effective weights are ``s**2``.
            alpha: the Section 3.6.2 hack — the weight gradient is divided by
                ``alpha``.  ``alpha = 1`` is the original algorithm; large
                ``alpha`` freezes the weights (``alpha = inf`` is equivalent
                to the identical-weights scheme).

        Returns:
            ``(value, grad_t, grad_s)``.
        """
        if alpha <= 0:
            raise TrainingError(f"alpha must be positive, got {alpha}")
        s = np.asarray(s, dtype=np.float64).reshape(-1)
        value, grad_t, grad_w = self._evaluate(t, s * s, with_grad=True)
        assert grad_t is not None and grad_w is not None
        grad_s = grad_w * (2.0 * s) / alpha
        return value, grad_t, grad_s

    def bag_probabilities(
        self, t: np.ndarray, w: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Noisy-or probabilities ``Pr(t|B)`` for (positive, negative) bags.

        For positive bags this is ``1 - prod(1 - p_j)``; for negative bags
        ``prod(1 - p_j)`` — both as defined in Section 2.2.1, evaluated at
        the supplied concept.
        """
        t, w = self._check(t, w)
        pos = np.ones(self._n_pos_bags)
        neg = np.ones(self._n_neg_bags)
        if self._pos_x.shape[0]:
            _, p = self._instance_probabilities(self._pos_x, t, w)
            log_q = np.add.reduceat(np.log1p(-p), self._pos_starts)
            pos = -np.expm1(log_q)
        if self._neg_x.shape[0]:
            _, p = self._instance_probabilities(self._neg_x, t, w)
            log_q = np.add.reduceat(np.log1p(-p), self._neg_bounds[:-1])
            neg = np.exp(log_q)
        return pos, neg

    def _evaluate(
        self, t: np.ndarray, w: np.ndarray, with_grad: bool
    ) -> tuple[float, np.ndarray | None, np.ndarray | None]:
        t, w = self._check(t, w)
        value = 0.0
        grad_t = np.zeros(self._n_dims) if with_grad else None
        grad_w = np.zeros(self._n_dims) if with_grad else None

        # ---- positive bags: -sum_i log(1 - prod_j (1 - p_j)) -------------
        if self._pos_x.shape[0]:
            diff, p = self._instance_probabilities(self._pos_x, t, w)
            log1m = np.log1p(-p)
            log_q = np.add.reduceat(log1m, self._pos_starts)  # log prod(1-p) per bag
            bag_p = np.maximum(-np.expm1(log_q), _LOG_FLOOR)  # P_i = 1 - Q_i
            value -= float(np.log(bag_p).sum())
            if with_grad:
                q_over_p = np.exp(log_q) / bag_p  # Q_i / P_i per bag
                ratio = p / (1.0 - p)  # per instance
                bag_of = np.repeat(
                    np.arange(self._n_pos_bags), np.diff(self._pos_bounds)
                )
                coeff = q_over_p[bag_of] * ratio
                grad_w += coeff @ (diff * diff)
                grad_t += -2.0 * w * (coeff @ diff)

        # ---- negative bags: -sum_ij log(1 - p_j) --------------------------
        if self._neg_x.shape[0]:
            diff, p = self._instance_probabilities(self._neg_x, t, w)
            value -= float(np.log1p(-p).sum())
            if with_grad:
                coeff = -(p / (1.0 - p))
                grad_w += coeff @ (diff * diff)
                grad_t += -2.0 * w * (coeff @ diff)

        return value, grad_t, grad_w
