"""The Diverse Density objective (Section 2.2), single-start and batched.

Diverse Density at a point ``t`` with per-dimension weights ``w`` is

    DD(t, w) = prod_i Pr(t | B+_i) * prod_i Pr(t | B-_i)

under the noisy-or model

    Pr(t | B+_i) = 1 - prod_j (1 - Pr(B+_ij = t))
    Pr(t | B-_i) =     prod_j (1 - Pr(B-_ij = t))
    Pr(B_ij = t) = exp(-||B_ij - t||^2_w),
    ||x - t||^2_w = sum_k w_k (x_k - t_k)^2.

We minimise the negative log, ``NLL = -log DD``, which decomposes over bags.

Multi-restart training evaluates this objective at many concepts per
descent step, so the primary implementation here is *batched*:
:class:`BatchedDiverseDensityObjective` takes ``R`` concept points ``T``
(shape ``(R, d)``) and weights ``W`` at once and returns ``R`` values and
gradients from one ``(R, n_instances)`` distance tensor per side, built
with the same cached-squares expansion used by
:class:`~repro.core.retrieval.PackedCorpus`:

    d2[r, j] = (x_j * x_j) . W[r] - 2 x_j . (W[r] * T[r]) + (W[r] * T[r]) . T[r]

:class:`DiverseDensityObjective` — the historical single-start interface —
is a thin ``R = 1`` view over the batched objective, so the sequential and
batched training engines share bit-identical arithmetic.

Gradient derivation (used below): with ``d2_j = ||x_j - t||^2_w`` and
``p_j = exp(-d2_j)``, every bag contributes per-instance coefficients

    positive bag i:  c_j = (Q_i / P_i) * p_j / (1 - p_j),
                     Q_i = prod(1 - p_j),  P_i = 1 - Q_i
    negative bag i:  c_j = -p_j / (1 - p_j)

and then

    dNLL/dw_k = sum_j c_j (x_jk - t_k)^2
    dNLL/dt_k = 2 w_k sum_j c_j (t_k - x_jk).

The paper optimises weights through the substitution ``w_k = s_k^2`` to keep
them non-negative; ``value_and_grad_squared`` exposes that parametrisation
(including the "alpha hack" of Section 3.6.2, which divides the weight
gradient by a constant ``alpha``).

A note on determinism: every reduction in this module is *restart-slice
stable* — evaluating a subset of restarts (down to a single one) produces
bit-identical rows to evaluating the full batch.  That is why the
contractions use :func:`numpy.einsum` (whose per-row accumulation order is
independent of the batch composition) rather than BLAS matrix products
(whose blocking is not).  The engine equivalence suite relies on this.
"""

from __future__ import annotations

import numpy as np

from repro.bags.bag import BagSet
from repro.errors import TrainingError

#: Instance probabilities are clamped into [0, 1 - _P_EPS] so that a bag
#: sitting exactly on ``t`` does not produce an infinite negative-bag NLL.
_P_EPS = 1e-12
#: Bag probabilities are floored at this value before taking logs.
_LOG_FLOOR = 1e-300


def batched_weighted_distances(
    x: np.ndarray, x_squared: np.ndarray, t: np.ndarray, w: np.ndarray
) -> np.ndarray:
    """Weighted squared distances of every instance to every concept.

    Args:
        x: ``(n, d)`` stacked instances.
        x_squared: ``x * x``, precomputed once per training run.
        t: ``(R, d)`` concept points.
        w: ``(R, d)`` non-negative weights.

    Returns:
        ``(R, n)`` tensor ``d2[r, j] = sum_k w[r, k] (x[j, k] - t[r, k])^2``
        via the cached-squares expansion.  Tiny negative values can appear
        through cancellation; callers clamp the derived probabilities.
    """
    wt = w * t
    d2 = np.einsum("rd,nd->rn", w, x_squared)
    d2 -= 2.0 * np.einsum("rd,nd->rn", wt, x)
    d2 += np.einsum("rd,rd->r", wt, t)[:, None]
    return d2


class BatchedDiverseDensityObjective:
    """Vectorised noisy-or negative-log Diverse Density for ``R`` restarts.

    Args:
        bag_set: the labelled bags; must contain at least one positive bag.

    The objective is stateless after construction; it can be shared across
    restarts, schemes and engines.  All evaluation methods accept ``(R, d)``
    concept/weight matrices for any ``R >= 1``.
    """

    def __init__(self, bag_set: BagSet) -> None:
        bag_set.validate_for_training()
        self._n_dims = bag_set.n_dims
        self._pos_x, self._pos_bounds = bag_set.stacked(label=True)
        self._neg_x, self._neg_bounds = bag_set.stacked(label=False)
        # Cached squares: the expansion evaluates x*x once per training run
        # instead of (x - t)^2 once per restart per step.
        self._pos_sq = self._pos_x * self._pos_x
        self._neg_sq = self._neg_x * self._neg_x
        self._n_pos_bags = len(self._pos_bounds) - 1
        self._n_neg_bags = len(self._neg_bounds) - 1
        # Map every positive instance row to its bag index for fast segment
        # products/sums via np.add.reduceat.
        self._pos_starts = self._pos_bounds[:-1]
        self._pos_bag_of = np.repeat(
            np.arange(self._n_pos_bags), np.diff(self._pos_bounds)
        )

    @property
    def n_dims(self) -> int:
        """Feature dimensionality."""
        return self._n_dims

    @property
    def n_positive_bags(self) -> int:
        """Number of positive bags in the objective."""
        return self._n_pos_bags

    @property
    def n_negative_bags(self) -> int:
        """Number of negative bags in the objective."""
        return self._n_neg_bags

    def _check(
        self, t: np.ndarray, w: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        t = np.atleast_2d(np.asarray(t, dtype=np.float64))
        w = np.atleast_2d(np.asarray(w, dtype=np.float64))
        if t.shape[1] != self._n_dims or w.shape[1] != self._n_dims:
            raise TrainingError(
                f"expected {self._n_dims}-dim t and w, got {t.shape[1]} and {w.shape[1]}"
            )
        if t.shape[0] != w.shape[0]:
            raise TrainingError(
                f"batch size mismatch: {t.shape[0]} concepts, {w.shape[0]} weight rows"
            )
        if np.any(w < 0):
            raise TrainingError("weights must be non-negative")
        return t, w

    @staticmethod
    def _instance_probabilities(
        x: np.ndarray, x_squared: np.ndarray, t: np.ndarray, w: np.ndarray
    ) -> np.ndarray:
        """``(R, n)`` clamped probabilities ``p[r, j] = exp(-d2[r, j])``."""
        p = np.exp(-batched_weighted_distances(x, x_squared, t, w))
        np.clip(p, 0.0, 1.0 - _P_EPS, out=p)
        return p

    def value(self, t: np.ndarray, w: np.ndarray) -> np.ndarray:
        """``(R,)`` NLL values at the batch.  Lower is better."""
        values, _, _ = self._evaluate(t, w, with_grad=False)
        return values

    def value_and_grad(
        self, t: np.ndarray, w: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """NLL and gradients ``(values, grad_t, grad_w)``, each batched."""
        values, grad_t, grad_w = self._evaluate(t, w, with_grad=True)
        assert grad_t is not None and grad_w is not None
        return values, grad_t, grad_w

    def value_and_grad_squared(
        self, t: np.ndarray, s: np.ndarray, alpha: float = 1.0
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """NLL and gradients under the ``w = s**2`` parametrisation.

        Args:
            t: ``(R, d)`` concept points.
            s: ``(R, d)`` signed square-root weights; effective weights are
                ``s**2``.
            alpha: the Section 3.6.2 hack — the weight gradient is divided
                by ``alpha``.  ``alpha = 1`` is the original algorithm.

        Returns:
            ``(values, grad_t, grad_s)``.
        """
        if alpha <= 0:
            raise TrainingError(f"alpha must be positive, got {alpha}")
        s = np.atleast_2d(np.asarray(s, dtype=np.float64))
        values, grad_t, grad_w = self._evaluate(t, s * s, with_grad=True)
        assert grad_t is not None and grad_w is not None
        grad_s = grad_w * (2.0 * s) / alpha
        return values, grad_t, grad_s

    def bag_probabilities(
        self, t: np.ndarray, w: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Noisy-or ``Pr(t|B)`` for (positive, negative) bags, batched.

        For positive bags this is ``1 - prod(1 - p_j)``; for negative bags
        ``prod(1 - p_j)`` — both as defined in Section 2.2.1.  Shapes are
        ``(R, n_positive_bags)`` and ``(R, n_negative_bags)``.
        """
        t, w = self._check(t, w)
        batch = t.shape[0]
        pos = np.ones((batch, self._n_pos_bags))
        neg = np.ones((batch, self._n_neg_bags))
        if self._pos_x.shape[0]:
            p = self._instance_probabilities(self._pos_x, self._pos_sq, t, w)
            log_q = np.add.reduceat(np.log1p(-p), self._pos_starts, axis=1)
            pos = -np.expm1(log_q)
        if self._neg_x.shape[0]:
            p = self._instance_probabilities(self._neg_x, self._neg_sq, t, w)
            log_q = np.add.reduceat(np.log1p(-p), self._neg_bounds[:-1], axis=1)
            neg = np.exp(log_q)
        return pos, neg

    def _accumulate_gradients(
        self,
        coeff: np.ndarray,
        x: np.ndarray,
        x_squared: np.ndarray,
        t: np.ndarray,
        w: np.ndarray,
        grad_t: np.ndarray,
        grad_w: np.ndarray,
    ) -> None:
        """Add one side's per-instance coefficient contributions in place.

        Uses the expanded forms

            sum_j c_j (x_j - t)^2 = C.x² - 2 t (C.x) + t² (C.1)
            sum_j c_j (x_j - t)   = C.x  - t (C.1)

        so the contractions stay restart-slice stable.
        """
        cx = np.einsum("rn,nd->rd", coeff, x)
        cx2 = np.einsum("rn,nd->rd", coeff, x_squared)
        csum = coeff.sum(axis=1)[:, None]
        grad_w += cx2 - 2.0 * t * cx + t * t * csum
        grad_t += -2.0 * w * (cx - t * csum)

    def _evaluate(
        self, t: np.ndarray, w: np.ndarray, with_grad: bool
    ) -> tuple[np.ndarray, np.ndarray | None, np.ndarray | None]:
        t, w = self._check(t, w)
        batch = t.shape[0]
        values = np.zeros(batch)
        grad_t = np.zeros((batch, self._n_dims)) if with_grad else None
        grad_w = np.zeros((batch, self._n_dims)) if with_grad else None

        # ---- positive bags: -sum_i log(1 - prod_j (1 - p_j)) -------------
        if self._pos_x.shape[0]:
            p = self._instance_probabilities(self._pos_x, self._pos_sq, t, w)
            log1m = np.log1p(-p)
            # log prod(1-p) per bag per restart
            log_q = np.add.reduceat(log1m, self._pos_starts, axis=1)
            bag_p = np.maximum(-np.expm1(log_q), _LOG_FLOOR)  # P_i = 1 - Q_i
            values -= np.log(bag_p).sum(axis=1)
            if with_grad:
                assert grad_t is not None and grad_w is not None
                q_over_p = np.exp(log_q) / bag_p  # Q_i / P_i per bag
                ratio = p / (1.0 - p)  # per instance
                coeff = q_over_p[:, self._pos_bag_of] * ratio
                self._accumulate_gradients(
                    coeff, self._pos_x, self._pos_sq, t, w, grad_t, grad_w
                )

        # ---- negative bags: -sum_ij log(1 - p_j) --------------------------
        if self._neg_x.shape[0]:
            p = self._instance_probabilities(self._neg_x, self._neg_sq, t, w)
            values -= np.log1p(-p).sum(axis=1)
            if with_grad:
                assert grad_t is not None and grad_w is not None
                coeff = -(p / (1.0 - p))
                self._accumulate_gradients(
                    coeff, self._neg_x, self._neg_sq, t, w, grad_t, grad_w
                )

        return values, grad_t, grad_w


class DiverseDensityObjective:
    """Single-start view over :class:`BatchedDiverseDensityObjective`.

    Args:
        bag_set: the labelled bags; must contain at least one positive bag.

    This is the historical scalar interface consumed by the per-start
    weight schemes and solvers; it evaluates through the batched objective
    with ``R = 1`` so both training engines share identical arithmetic.
    """

    def __init__(self, bag_set: BagSet) -> None:
        self._batched = BatchedDiverseDensityObjective(bag_set)

    @property
    def batched(self) -> BatchedDiverseDensityObjective:
        """The underlying batched objective (shared, stateless)."""
        return self._batched

    @property
    def n_dims(self) -> int:
        """Feature dimensionality."""
        return self._batched.n_dims

    @property
    def n_positive_bags(self) -> int:
        """Number of positive bags in the objective."""
        return self._batched.n_positive_bags

    @property
    def n_negative_bags(self) -> int:
        """Number of negative bags in the objective."""
        return self._batched.n_negative_bags

    @staticmethod
    def _as_row(vector: np.ndarray) -> np.ndarray:
        return np.asarray(vector, dtype=np.float64).reshape(1, -1)

    def value(self, t: np.ndarray, w: np.ndarray) -> float:
        """NLL at ``(t, w)``.  Lower is better (higher Diverse Density)."""
        return float(self._batched.value(self._as_row(t), self._as_row(w))[0])

    def value_and_grad(
        self, t: np.ndarray, w: np.ndarray
    ) -> tuple[float, np.ndarray, np.ndarray]:
        """NLL and its gradients ``(value, grad_t, grad_w)`` at ``(t, w)``."""
        values, grad_t, grad_w = self._batched.value_and_grad(
            self._as_row(t), self._as_row(w)
        )
        return float(values[0]), grad_t[0], grad_w[0]

    def value_and_grad_squared(
        self, t: np.ndarray, s: np.ndarray, alpha: float = 1.0
    ) -> tuple[float, np.ndarray, np.ndarray]:
        """NLL and gradients under the ``w = s**2`` parametrisation.

        Args:
            t: concept point.
            s: signed square-root weights; effective weights are ``s**2``.
            alpha: the Section 3.6.2 hack — the weight gradient is divided by
                ``alpha``.  ``alpha = 1`` is the original algorithm; large
                ``alpha`` freezes the weights (``alpha = inf`` is equivalent
                to the identical-weights scheme).

        Returns:
            ``(value, grad_t, grad_s)``.
        """
        values, grad_t, grad_s = self._batched.value_and_grad_squared(
            self._as_row(t), self._as_row(s), alpha=alpha
        )
        return float(values[0]), grad_t[0], grad_s[0]

    def bag_probabilities(
        self, t: np.ndarray, w: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Noisy-or probabilities ``Pr(t|B)`` for (positive, negative) bags."""
        pos, neg = self._batched.bag_probabilities(
            self._as_row(t), self._as_row(w)
        )
        return pos[0], neg[0]
