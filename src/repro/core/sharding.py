"""Sharded, bound-pruned exact top-k ranking (the serving rank index).

The exhaustive :class:`~repro.core.retrieval.Ranker` streams every instance
of the corpus through the weighted-distance kernel on every query.  MIL's
ranking score — the *minimum* over a bag's instances — admits a cheap and
provably exact per-bag lower bound: for a bag whose instances lie inside
the coordinate box ``[lo, hi]`` (the per-coordinate min/max envelope over
its instances), every instance ``x`` satisfies

    sum_j w_j (x_j - t_j)^2  >=  sum_j w_j * clip_j^2,
    clip_j = max(0, lo_j - t_j, t_j - hi_j)

because each coordinate of ``x`` lies in ``[lo_j, hi_j]`` and the weights
are non-negative.  The bound costs O(n_bags * d) per query — one envelope
pass instead of one pass per instance — and any bag whose bound exceeds
the current kth-best *exact* distance can be skipped without evaluating a
single instance.  Pruning is deliberately conservative: the cutoff is the
threshold widened by the relative :data:`PRUNE_SLACK` *and* an absolute
floor scaled to the corpus/query magnitude
(:meth:`ShardIndex.prune_floor` — together absorbing the formula
difference between the clip-form bound and the expanded-form kernel,
including its cancellation error near distance 0) and ties at the cutoff
are always evaluated, so a bag whose exact distance
ties the kth-best (and might win on the id tie-break) is never skipped:
the pruned ranking is **ordering-identical** to the exhaustive one,
asserted by the equivalence suites.

:class:`ShardIndex` precomputes the envelopes once per corpus (cached on
the :class:`~repro.core.retrieval.PackedCorpus`, so corpus mutation —
which rebuilds the packed view — can never serve a stale index) and
partitions the bags into contiguous shards.  :class:`ShardedRanker` fans
the shards out over a thread pool (the numpy kernels release the GIL),
each shard scanning its bags in ascending-bound order in memory-bounded
chunks while all shards share one running top-k threshold; the per-shard
survivors are merged with the same id-tie-broken partial sort the
exhaustive path uses, so the output is deterministic regardless of thread
scheduling.
"""

from __future__ import annotations

import atexit
import os
import threading
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from typing import Iterable

import numpy as np

from repro.core.concept import LearnedConcept
from repro.core.retrieval import (
    PackedCorpus,
    RetrievalResult,
    Ranker,
    build_result,
    concat_ranges,
    keep_mask,
    top_order,
)
from repro.errors import DatabaseError

#: Target bags per shard when the shard count is chosen automatically.
DEFAULT_SHARD_BAGS = 16384
#: Cap on automatically chosen shard counts (thread fan-out width).
MAX_AUTO_SHARDS = 16
#: Bags evaluated per chunk inside a shard scan (memory bound: one chunk of
#: gathered instance rows is the largest per-query temporary).
DEFAULT_CHUNK_BAGS = 1024
#: Bags per group envelope (the coarse first pruning level).  A group's
#: envelope is the union box of its bags' envelopes, so one group-bound
#: comparison can rule out all of its bags before any per-bag bound is
#: computed — the per-query bound pass drops from O(n_bags x d) to
#: O(n_bags / group_size x d) plus the surviving groups.
DEFAULT_GROUP_BAGS = 64
#: Relative slack applied to the pruning threshold.  The bound (clip form)
#: and the exact kernel (expanded form) compute the same real quantity
#: through different floating-point formulas, so on non-dyadic data the
#: computed bound of a boundary bag can land a few ulps *above* its
#: computed exact distance; widening the cutoff by this factor keeps every
#: such bag in the evaluated set.  Slack only ever causes extra exact
#: evaluations — it can never prune a candidate — so exactness is
#: preserved and the cost is a handful of borderline bags per query.
PRUNE_SLACK = 1e-9
#: Surviving bags sampled by :func:`seed_threshold` when the coordinator
#: pre-tightens the pruning threshold for a scattered query.  The sample is
#: a deterministic stride over the survivors, so the seed — and therefore
#: the amount of work each worker skips — is reproducible run to run.
SEED_SAMPLE_BAGS = 4096
#: Safety factor on the absolute cutoff floor (:meth:`ShardIndex.prune_floor`).
#: The floor bounds the expanded quadratic form's cancellation error; the
#: analytic bound is ~``n_dims * eps * kernel_scale`` and this factor covers
#: the accumulation constants the analysis elides.  Like :data:`PRUNE_SLACK`,
#: a generous floor only costs extra exact evaluations, never exactness.
PRUNE_FLOOR_SAFETY = 8.0


_POOL_LOCK = threading.Lock()
_SHARED_POOLS: "OrderedDict[int | None, ThreadPoolExecutor]" = OrderedDict()
#: Cap on cached shard-scan pools.  Widths are configuration, not traffic,
#: so a handful suffices — but a caller sweeping widths (benchmarks, a
#: misconfigured client) must not leak one live executor per width
#: forever, so least-recently-used pools beyond the cap are shut down.
MAX_POOL_CACHE = 8


def _shared_pool(workers: int | None = None) -> ThreadPoolExecutor:
    """The process-wide shard-scan thread pool for a width, created on first use.

    A routed query's scan targets single-digit milliseconds, so paying
    thread spawn/teardown per query (every :meth:`Ranker.rank` call
    constructs a fresh :class:`ShardedRanker`) would cost a double-digit
    share of the budget.  Pools are cached per requested width — ``None``
    (the machine-sized default) and every explicit ``workers`` value get
    one long-lived executor each, so pinned-width callers (serving knobs,
    benchmarks) stop spawning a throwaway pool per query.  The cache is
    LRU-bounded at :data:`MAX_POOL_CACHE` widths; an evicted pool is shut
    down without waiting (its already-queued scans still finish — only
    new submissions are refused, and a re-requested width simply gets a
    fresh pool).  All cached pools are shut down at interpreter exit via
    :func:`atexit`.  numpy releases the GIL inside the kernels, concurrent
    ``map`` calls interleave safely, and the deterministic merge makes
    scheduling invisible in the output.
    """
    evicted = None
    with _POOL_LOCK:
        pool = _SHARED_POOLS.get(workers)
        if pool is None:
            width = (
                min(MAX_AUTO_SHARDS, max(1, os.cpu_count() or 2))
                if workers is None
                else workers
            )
            suffix = "auto" if workers is None else str(workers)
            pool = ThreadPoolExecutor(
                max_workers=width,
                thread_name_prefix=f"repro-shard-{suffix}",
            )
            _SHARED_POOLS[workers] = pool
            if len(_SHARED_POOLS) > MAX_POOL_CACHE:
                _, evicted = _SHARED_POOLS.popitem(last=False)
        else:
            _SHARED_POOLS.move_to_end(workers)
    if evicted is not None:
        evicted.shutdown(wait=False)
    return pool


def _shutdown_shared_pools() -> None:
    """Shut down every cached shard-scan pool (registered with atexit)."""
    with _POOL_LOCK:
        pools = list(_SHARED_POOLS.values())
        _SHARED_POOLS.clear()
    for pool in pools:
        pool.shutdown(wait=False)


atexit.register(_shutdown_shared_pools)


def _cutoff(threshold: float, floor: float) -> float:
    """The widened pruning cutoff for a running kth-best distance.

    Relative slack alone collapses to zero width when the running
    threshold is 0 — exactly the regime where the expanded-form kernel's
    cancellation error (clamped at 0 by ``min_distances``) is largest
    relative to the clip-form bound, so a bag whose computed exact
    distance rounds to the threshold could still be pruned by its
    positive bound.  The absolute ``floor`` (scaled to the corpus/query
    magnitude, see :meth:`ShardIndex.prune_floor`) keeps the cutoff wider
    than that cancellation error at every threshold.
    """
    return threshold + max(PRUNE_SLACK * threshold, floor)


def shard_boundaries(n_bags: int, n_shards: int | None = None) -> np.ndarray:
    """Contiguous shard boundaries (``n_shards + 1`` offsets) over the bags.

    ``n_shards=None`` picks one shard per :data:`DEFAULT_SHARD_BAGS` bags,
    capped at :data:`MAX_AUTO_SHARDS`.  An explicit count is clamped to the
    bag count (a shard is never empty) and must be positive.

    Raises:
        DatabaseError: on a non-positive explicit ``n_shards``.
    """
    if n_shards is not None and n_shards < 1:
        raise DatabaseError(f"n_shards must be >= 1, got {n_shards}")
    if n_bags <= 0:
        return np.zeros(1, dtype=np.int64)
    if n_shards is None:
        n_shards = max(1, min(MAX_AUTO_SHARDS, -(-n_bags // DEFAULT_SHARD_BAGS)))
    n_shards = min(n_shards, n_bags)
    return np.array(
        [i * n_bags // n_shards for i in range(n_shards + 1)], dtype=np.int64
    )


class ShardIndex:
    """Per-bag pruning envelopes plus a shard partition over one corpus.

    Attributes:
        corpus: the :class:`PackedCorpus` the index describes.
        lower / upper: ``(n_bags, d)`` per-bag coordinate min/max envelopes.
        boundaries: ``(n_shards + 1,)`` contiguous bag-range offsets.
        group_size: bags per coarse group envelope.
        group_lower / group_upper: ``(n_groups, d)`` union envelopes of
            each block of ``group_size`` consecutive bags (derived from the
            per-bag envelopes on construction, never persisted).
        extent: ``(d,)`` per-coordinate max absolute value over all bag
            envelopes — the corpus-magnitude input to :meth:`prune_floor`
            (derived on construction, never persisted).

    The envelopes are partition-independent, so :meth:`reshard` changes the
    fan-out width without touching the instance matrix.
    """

    __slots__ = (
        "corpus",
        "lower",
        "upper",
        "boundaries",
        "group_size",
        "group_lower",
        "group_upper",
        "extent",
    )

    def __init__(
        self,
        corpus: PackedCorpus,
        lower: np.ndarray,
        upper: np.ndarray,
        boundaries: np.ndarray,
        group_size: int = DEFAULT_GROUP_BAGS,
        *,
        _derived: tuple | None = None,
    ) -> None:
        lower = np.asarray(lower, dtype=np.float64)
        upper = np.asarray(upper, dtype=np.float64)
        bounds = np.asarray(boundaries, dtype=np.int64).reshape(-1)
        expected = (corpus.n_bags, corpus.n_dims)
        if lower.shape != expected or upper.shape != expected:
            raise DatabaseError(
                f"shard index envelopes must have shape {expected}, got "
                f"{lower.shape} and {upper.shape}"
            )
        if np.any(lower > upper):
            raise DatabaseError("shard index envelope has lower > upper")
        if (
            bounds.size < 1
            or bounds[0] != 0
            or bounds[-1] != corpus.n_bags
            or (bounds.size > 1 and np.any(np.diff(bounds) < 1))
        ):
            raise DatabaseError(
                f"shard boundaries must partition [0, {corpus.n_bags}] into "
                f"non-empty ranges, got {bounds.tolist()}"
            )
        if group_size < 1:
            raise DatabaseError(f"group_size must be >= 1, got {group_size}")
        self.corpus = corpus
        self.lower = lower
        self.upper = upper
        self.boundaries = bounds
        self.group_size = int(group_size)
        if _derived is not None:
            # Partition-independent derived arrays handed over by
            # :meth:`reshard`, which must stay O(n_shards) as documented.
            self.group_lower, self.group_upper, self.extent = _derived
        elif lower.shape[0] == 0:
            self.group_lower = lower
            self.group_upper = upper
            self.extent = np.zeros(lower.shape[1])
        else:
            self.extent = np.maximum(np.abs(lower), np.abs(upper)).max(axis=0)
            group_starts = np.arange(0, lower.shape[0], group_size,
                                     dtype=np.int64)
            self.group_lower = np.minimum.reduceat(lower, group_starts, axis=0)
            self.group_upper = np.maximum.reduceat(upper, group_starts, axis=0)

    @classmethod
    def build(
        cls,
        corpus,
        n_shards: int | None = None,
        group_size: int = DEFAULT_GROUP_BAGS,
    ) -> "ShardIndex":
        """Build the index for a corpus: one min/max pass over the matrix."""
        packed = PackedCorpus.coerce(corpus)
        if packed.n_bags == 0:
            empty = np.zeros((0, packed.n_dims))
            return cls(packed, empty, empty.copy(), np.zeros(1, dtype=np.int64),
                       group_size)
        lower = np.minimum.reduceat(packed.instances, packed.offsets[:-1], axis=0)
        upper = np.maximum.reduceat(packed.instances, packed.offsets[:-1], axis=0)
        return cls(packed, lower, upper,
                   shard_boundaries(packed.n_bags, n_shards), group_size)

    @property
    def n_bags(self) -> int:
        """Bags covered by the index."""
        return self.lower.shape[0]

    @property
    def n_dims(self) -> int:
        """Feature dimensionality."""
        return self.lower.shape[1]

    @property
    def n_shards(self) -> int:
        """Number of shards in the partition."""
        return max(1, self.boundaries.size - 1)

    def reshard(self, n_shards: int | None) -> "ShardIndex":
        """The same envelopes under a different shard partition (cheap).

        The per-bag and group envelopes plus the extent are partition
        independent, so only the boundary offsets are recomputed —
        O(n_shards), not O(n_bags x d).
        """
        return ShardIndex(
            self.corpus,
            self.lower,
            self.upper,
            shard_boundaries(self.n_bags, n_shards),
            self.group_size,
            _derived=(self.group_lower, self.group_upper, self.extent),
        )

    def lower_bounds(self, concept: LearnedConcept) -> np.ndarray:
        """Exact per-bag lower bounds on the min weighted squared distance.

        Never exceeds :meth:`PackedCorpus.min_distances` (asserted by the
        unit suite); equals it when a bag's envelope is a point.

        Raises:
            DatabaseError: on a concept whose dimensionality does not match.
        """
        if concept.n_dims != self.n_dims:
            raise DatabaseError(
                f"concept has {concept.n_dims} dims but the shard index "
                f"holds {self.n_dims}"
            )
        return envelope_bounds(self.lower, self.upper, concept)

    def prune_floor(self, concept: LearnedConcept) -> float:
        """Absolute cutoff slack covering the exact kernel's rounding error.

        ``min_distances`` evaluates the expanded quadratic form
        ``(X^2) @ w - 2 X @ (w t) + w . t^2``, whose terms can each reach
        ``kernel_scale = w @ (extent + |t|)^2`` in magnitude; catastrophic
        cancellation between them (clamped at 0) can therefore push a
        computed distance below its true value — and below the clip-form
        bound — by up to ``O(n_dims * eps * kernel_scale)``.  The floor
        (that bound times :data:`PRUNE_FLOOR_SAFETY`) widens the pruning
        cutoff by at least this error at every threshold, so a bag whose
        computed exact distance ties the running kth-best is never pruned
        on the strength of its (more accurate) bound, even when the
        threshold itself is 0 and relative slack has no width.  O(d) per
        query.
        """
        if concept.n_dims != self.n_dims:
            raise DatabaseError(
                f"concept has {concept.n_dims} dims but the shard index "
                f"holds {self.n_dims}"
            )
        scale = float(concept.w @ (self.extent + np.abs(concept.t)) ** 2)
        eps = float(np.finfo(np.float64).eps)
        return PRUNE_FLOOR_SAFETY * max(1, self.n_dims) * eps * scale

    def __repr__(self) -> str:
        return (
            f"ShardIndex({self.n_bags} bags, {self.n_dims} dims, "
            f"{self.n_shards} shards)"
        )


def index_payload(index: ShardIndex, prefix: str, arrays: dict) -> dict:
    """Stash an index's persistent arrays under ``prefix``; returns its manifest.

    Only the partition-dependent essentials are persisted (per-bag
    envelopes, shard boundaries, group size); the group envelopes and the
    extent are rederived on restore.  Snapshot formats (database format
    v3, serve snapshots) and the shared-memory worker layout all encode
    the index through this one helper.
    """
    arrays[f"{prefix}_lower"] = index.lower
    arrays[f"{prefix}_upper"] = index.upper
    arrays[f"{prefix}_boundaries"] = index.boundaries
    return {
        "lower": f"{prefix}_lower",
        "upper": f"{prefix}_upper",
        "boundaries": f"{prefix}_boundaries",
        "group_size": int(index.group_size),
    }


def adopt_index_payload(packed: PackedCorpus, info, arrays) -> None:
    """Rebuild and adopt a persisted shard index onto a restored corpus.

    ``info`` is an :func:`index_payload` manifest (``None`` is a no-op, so
    callers can pass ``manifest.get(...)`` directly).

    Raises:
        DatabaseError: when the index arrays are missing or do not
            describe the corpus (a corrupt snapshot must not silently
            serve wrong prunings).
    """
    if info is None:
        return
    try:
        lower = arrays[info["lower"]]
        upper = arrays[info["upper"]]
        boundaries = arrays[info["boundaries"]]
    except (KeyError, TypeError) as exc:
        raise DatabaseError(
            f"snapshot manifest references missing shard-index arrays: {exc}"
        ) from exc
    packed.adopt_shard_index(
        ShardIndex(
            packed,
            lower=lower,
            upper=upper,
            boundaries=boundaries,
            # Payloads predating the group_size field restore the default.
            group_size=int(info.get("group_size", DEFAULT_GROUP_BAGS)),
        )
    )


def envelope_bounds(
    lower: np.ndarray, upper: np.ndarray, concept: LearnedConcept
) -> np.ndarray:
    """The box lower bound for each envelope row: ``w . clip(t,lo,hi)-t)^2``.

    ``clip`` projects the concept point onto each bag's box, so the result
    is the exact weighted squared distance from ``t`` to the box — the
    infimum of the instance kernel over it.  One clip, one in-place square
    and one matrix-vector product; no O(bags x dims) temporary beyond the
    clipped matrix itself.
    """
    gap = np.clip(concept.t, lower, upper)
    gap -= concept.t
    np.multiply(gap, gap, out=gap)
    return gap @ concept.w


class _ThresholdBox:
    """Thread-shared upper bound on the final kth-best distance.

    Every shard publishes its local kth-smallest evaluated distance; since
    each local kth is computed over a subset of the candidates, it can only
    over-estimate the global kth-best, so the shared minimum is always a
    *safe* pruning threshold — the pruned ranking does not depend on the
    order in which shards publish, only the amount of work skipped does.
    """

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = np.inf
        self._lock = threading.Lock()

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def update(self, candidate: float) -> None:
        with self._lock:
            if candidate < self._value:
                self._value = candidate


def seed_threshold(
    packed: PackedCorpus,
    index: ShardIndex,
    concept: LearnedConcept,
    keep: np.ndarray,
    top_k: int,
    *,
    sample_bags: int = SEED_SAMPLE_BAGS,
) -> float:
    """A safe initial pruning threshold from a small evaluated sample.

    Strides deterministically over the surviving bag positions, keeps the
    ``top_k`` smallest *envelope bounds* of the sample (one
    ``np.argpartition`` — no sort), exactly evaluates just those bags, and
    returns their kth-smallest exact distance.  The kth-smallest distance
    over any subset of the survivors can only over-estimate the global
    kth-best, so seeding a :class:`_ThresholdBox` with this value is safe
    for exactly the reason per-shard threshold publishing is — pruning
    against it skips work but can never skip a top-k contender.  Returns
    ``inf`` (a no-op seed) when the sample cannot fill a top-k.

    The scatter coordinator computes this once per query and ships it to
    every worker, so even the *first* chunk a late worker evaluates prunes
    against an already tight threshold instead of rediscovering one from
    scratch per fragment.

    Raises:
        DatabaseError: on a non-positive ``top_k`` / ``sample_bags``, an
            index built over a different corpus, or a mismatched concept.
    """
    if top_k < 1:
        raise DatabaseError(f"top_k must be >= 1, got {top_k}")
    if sample_bags < 1:
        raise DatabaseError(f"sample_bags must be >= 1, got {sample_bags}")
    if index.corpus is not packed:
        raise DatabaseError(
            "the shard index was built over a different corpus than the "
            "one being seeded"
        )
    if concept.n_dims != index.n_dims:
        raise DatabaseError(
            f"concept has {concept.n_dims} dims but the shard index "
            f"holds {index.n_dims}"
        )
    positions = np.nonzero(keep)[0]
    if positions.size > sample_bags:
        stride = -(-positions.size // sample_bags)
        positions = positions[::stride]
    if positions.size <= top_k:
        # Fewer sampled bags than k: the sample's maximum says nothing
        # about the global kth-best, so no safe seed exists.
        return float("inf")
    bounds = envelope_bounds(
        index.lower[positions], index.upper[positions], concept
    )
    pick = np.argpartition(bounds, top_k - 1)[:top_k]
    distances = packed.min_distances_at(concept, positions[pick])
    return float(np.partition(distances, top_k - 1)[top_k - 1])


class ShardedRanker:
    """Exact top-k ranking that skips bags the lower bound rules out.

    Produces orderings identical to the exhaustive
    :class:`~repro.core.retrieval.Ranker` (and therefore to
    :func:`~repro.core.retrieval.rank_by_loop`) for every input — the
    bound is geometric and the pruning cutoff slack-widened
    (:data:`PRUNE_SLACK` plus the absolute
    :meth:`ShardIndex.prune_floor`), so no tie-break or rounding case can
    diverge.
    Queries that cannot prune (``top_k`` ``None`` or at least the
    surviving pool size) fall back to the exhaustive kernel.

    Args:
        n_shards: shard count used when the corpus has no cached index
            (``None`` = automatic, see :func:`shard_boundaries`).
        workers: thread-pool width; ``None`` fans out over the shared
            machine-sized pool (:func:`_shared_pool` — no per-query thread
            spawn on the serving hot path), an explicit width fans out
            over a cached pool of that width, ``1`` scans shards
            sequentially.
        chunk_bags: bags evaluated per kernel call inside a shard scan.
    """

    def __init__(
        self,
        *,
        n_shards: int | None = None,
        workers: int | None = None,
        chunk_bags: int = DEFAULT_CHUNK_BAGS,
    ) -> None:
        if n_shards is not None and n_shards < 1:
            raise DatabaseError(f"n_shards must be >= 1, got {n_shards}")
        if workers is not None and workers < 1:
            raise DatabaseError(f"workers must be >= 1 or None, got {workers}")
        if chunk_bags < 1:
            raise DatabaseError(f"chunk_bags must be >= 1, got {chunk_bags}")
        self._n_shards = n_shards
        self._workers = workers
        self._chunk_bags = chunk_bags

    def rank(
        self,
        concept: LearnedConcept,
        corpus,
        *,
        top_k: int | None = None,
        exclude: Iterable[str] = (),
        category_filter: str | None = None,
        index: ShardIndex | None = None,
    ) -> RetrievalResult:
        """Rank a corpus, best match first — same contract as ``Ranker.rank``.

        Args:
            index: a prebuilt :class:`ShardIndex` to use instead of the
                corpus's cached one (benchmark/offline-build workflows).

        Raises:
            DatabaseError: on a non-positive ``top_k``, a mismatched
                concept, or an ``index`` built over a different corpus.
        """
        if top_k is not None and top_k < 1:
            raise DatabaseError(f"top_k must be >= 1 or None, got {top_k}")
        packed = PackedCorpus.coerce(corpus)
        if packed.n_bags == 0:
            return RetrievalResult((), total_candidates=0)
        exclude = tuple(exclude)  # consumed twice when the fallback runs
        keep = keep_mask(packed, exclude, category_filter)
        total = int(np.count_nonzero(keep))
        if total == 0:
            return RetrievalResult((), total_candidates=0)
        if top_k is None or top_k >= total:
            # Nothing can be pruned — every survivor must be ranked.
            return Ranker(auto_shard=False).rank(
                concept,
                packed,
                top_k=top_k,
                exclude=exclude,
                category_filter=category_filter,
            )
        if index is None:
            index = packed.shard_index(self._n_shards)
        elif index.corpus is not packed:
            # A same-shaped index over *different* instances would prune
            # silently wrong; the index carries its corpus, so identity is
            # checkable for free.
            raise DatabaseError(
                f"the supplied shard index ({index.n_bags} bags x "
                f"{index.n_dims} dims) was built over a different corpus "
                f"than the one being ranked ({packed.n_bags} x "
                f"{packed.n_dims}); build the index over the ranked corpus"
            )
        if concept.n_dims != packed.n_dims:
            raise DatabaseError(
                f"concept has {concept.n_dims} dims but the packed corpus "
                f"holds {packed.n_dims}"
            )
        box = _ThresholdBox()
        floor = index.prune_floor(concept)
        ranges = [
            (int(index.boundaries[i]), int(index.boundaries[i + 1]))
            for i in range(index.n_shards)
        ]
        scan = lambda span: self._shard_candidates(  # noqa: E731
            packed, concept, index, keep, top_k, box, floor, *span
        )
        if len(ranges) > 1 and (self._workers is None or self._workers > 1):
            parts = list(_shared_pool(self._workers).map(scan, ranges))
        else:
            parts = [scan(span) for span in ranges]
        candidate_idx = np.concatenate([part[0] for part in parts])
        candidate_dist = np.concatenate([part[1] for part in parts])
        ids = packed.id_array[candidate_idx]
        categories = packed.category_array[candidate_idx]
        order = top_order(ids, candidate_dist, top_k)
        return build_result(ids, categories, candidate_dist, order, total)

    def fragment_candidates(
        self,
        concept: LearnedConcept,
        corpus,
        *,
        top_k: int,
        start: int,
        stop: int,
        exclude: Iterable[str] = (),
        category_filter: str | None = None,
        index: ShardIndex | None = None,
        initial_threshold: float = np.inf,
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """One contiguous bag range's top-k candidates (the scatter half).

        Runs the same bound pass + chunked survivor evaluation as
        :meth:`rank`, restricted to bags in ``[start, stop)``, and returns
        ``(bag positions, exact distances, bags exactly evaluated)`` —
        the compact fragment a scatter worker ships back instead of a full
        ranking.  The candidate set is trimmed to the fragment's own
        kth-smallest distance with ties kept, exactly like a shard's.

        Merging fragments from a disjoint cover of the corpus through
        :func:`~repro.core.retrieval.top_order` reproduces :meth:`rank`
        bit for bit: every fragment keeps each of its bags whose exact
        distance can reach the global top-k (trimming only drops distances
        strictly above the fragment's kth-smallest, which is >= the global
        kth-best because the fragment's candidates are a subset of the
        query's), the distances come from the same expanded-form kernel
        over the same float64 data, and disjoint ranges mean no bag is
        ever a candidate twice.

        ``initial_threshold`` pre-seeds the shared pruning threshold; any
        upper bound on the query's true kth-best distance is safe
        (:func:`seed_threshold` computes one), ``inf`` disables seeding.

        Raises:
            DatabaseError: on a non-positive ``top_k``, a range outside
                ``[0, n_bags]``, a mismatched concept, or an ``index``
                built over a different corpus.
        """
        if top_k < 1:
            raise DatabaseError(f"top_k must be >= 1, got {top_k}")
        packed = PackedCorpus.coerce(corpus)
        if not 0 <= start <= stop <= packed.n_bags:
            raise DatabaseError(
                f"fragment range [{start}, {stop}) must lie inside "
                f"[0, {packed.n_bags}]"
            )
        empty = (np.zeros(0, dtype=np.int64), np.zeros(0), 0)
        if start == stop:
            return empty
        if index is None:
            index = packed.shard_index(self._n_shards)
        elif index.corpus is not packed:
            raise DatabaseError(
                f"the supplied shard index ({index.n_bags} bags x "
                f"{index.n_dims} dims) was built over a different corpus "
                f"than the one being ranked ({packed.n_bags} x "
                f"{packed.n_dims}); build the index over the ranked corpus"
            )
        if concept.n_dims != packed.n_dims:
            raise DatabaseError(
                f"concept has {concept.n_dims} dims but the packed corpus "
                f"holds {packed.n_dims}"
            )
        keep = keep_mask(packed, tuple(exclude), category_filter)
        box = _ThresholdBox()
        if np.isfinite(initial_threshold):
            box.update(float(initial_threshold))
        floor = index.prune_floor(concept)
        # The fragment scans its intersection with the index's shard
        # partition, so the in-range bound pass parallelises exactly like
        # a whole-corpus scan (and the partition the *coordinator* used to
        # cut fragments need not match this index's — correctness is
        # partition-independent).
        spans = []
        for i in range(index.n_shards):
            lo = max(start, int(index.boundaries[i]))
            hi = min(stop, int(index.boundaries[i + 1]))
            if lo < hi:
                spans.append((lo, hi))
        if not spans:
            return empty
        scan = lambda span: self._shard_candidates(  # noqa: E731
            packed, concept, index, keep, top_k, box, floor, *span
        )
        if len(spans) > 1 and (self._workers is None or self._workers > 1):
            parts = list(_shared_pool(self._workers).map(scan, spans))
        else:
            parts = [scan(span) for span in spans]
        idx = np.concatenate([part[0] for part in parts])
        dist = np.concatenate([part[1] for part in parts])
        n_evaluated = int(sum(part[2] for part in parts))
        if dist.size > top_k:
            kth = np.partition(dist, top_k - 1)[top_k - 1]
            contenders = dist <= kth
            idx = idx[contenders]
            dist = dist[contenders]
        return idx, dist, n_evaluated

    def _shard_candidates(
        self,
        packed: PackedCorpus,
        concept: LearnedConcept,
        index: ShardIndex,
        keep: np.ndarray,
        k: int,
        box: _ThresholdBox,
        floor: float,
        start: int,
        stop: int,
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """One shard's top-k candidates:
        ``(bag positions, exact distances, bags exactly evaluated)``.

        Two-level, two-phase scan.  Level one compares *group* envelope
        bounds (``group_size`` bags share one union box), so most bags are
        ruled out without ever computing their per-bag bound; level two
        bounds and then exactly evaluates only the bags of surviving
        groups.  Phase one (*seed*) evaluates the ``k`` smallest per-bag
        bounds of a small pool (edge bags + lowest-bound groups) via
        ``np.argpartition`` — no full sort — tightening the shared
        threshold as early as possible; phase two (*sweep*) evaluates the
        remaining survivors in memory-bounded chunks, re-checking the
        monotonically tightening threshold before each chunk.

        Exactness: a pruned bag's distance is >= its bag bound >= its
        group's bound > the slack-widened cutoff of a valid threshold >=
        the final kth-best distance, so no pruned bag can enter the top-k;
        ties at (or within the :data:`PRUNE_SLACK` / ``floor`` widening
        of) the threshold are always evaluated, so id tie-breaking cannot
        diverge.
        Bound computation happens here, per shard, so the thread pool
        parallelises it too.  The returned candidates are trimmed to the
        shard's own kth-smallest distance with ties kept, which preserves
        every possible member of the global top-k.
        """
        empty = (np.zeros(0, dtype=np.int64), np.zeros(0), 0)
        group = index.group_size
        # Whole groups [first_group, last_group) lie inside the shard; the
        # (up to 2 * (group - 1)) edge bags at unaligned boundaries are
        # treated as always-surviving seed-pool members.
        first_group = -(-start // group)
        last_group = max(first_group, stop // group)
        edges = np.concatenate([
            np.arange(start, min(first_group * group, stop), dtype=np.int64),
            np.arange(max(last_group * group, start), stop, dtype=np.int64),
        ])
        if edges.size:
            edges = edges[keep[edges]]
        group_ids = np.arange(first_group, last_group, dtype=np.int64)
        if group_ids.size:
            group_bounds = envelope_bounds(
                index.group_lower[first_group:last_group],
                index.group_upper[first_group:last_group],
                concept,
            )
            group_order = np.argsort(group_bounds)
        else:
            group_bounds = np.zeros(0)
            group_order = np.zeros(0, dtype=np.int64)

        # Seed pool: the edge bags plus the lowest-bound groups, until the
        # pool can fill a local top-k.  Evaluating the pool's k smallest
        # per-bag bounds first tightens the shared threshold as early as
        # possible; the pool's leftovers re-enter the sweep below.
        pool_parts = [edges]
        n_pool = edges.size
        n_seed_groups = 0
        while n_pool < k and n_seed_groups < group_order.size:
            g = int(group_ids[group_order[n_seed_groups]])
            members = np.arange(g * group, min((g + 1) * group, stop),
                                dtype=np.int64)
            members = members[keep[members]]
            pool_parts.append(members)
            n_pool += members.size
            n_seed_groups += 1
        pool = np.concatenate(pool_parts)
        if pool.size == 0:
            return empty
        pool_bounds = envelope_bounds(
            index.lower[pool], index.upper[pool], concept
        )
        if pool.size > k:
            seed = np.argpartition(pool_bounds, k - 1)[:k]
        else:
            seed = np.arange(pool.size)
        kept_idx = [pool[seed]]
        kept_dist = [packed.min_distances_at(concept, pool[seed])]
        best = kept_dist[0]
        if best.size > k:
            best = np.partition(best, k - 1)[:k]
        if best.size >= k:
            box.update(float(best.max()))

        # Sweep: the pool's unevaluated bags plus every bag of a surviving
        # group (group bound <= widened threshold; a group whose bound
        # exceeds a valid threshold cannot hold any top-k member).
        threshold = _cutoff(box.value, floor)
        sweep_positions = [np.zeros(0, dtype=np.int64)]
        sweep_bounds = [np.zeros(0)]
        if pool.size > k:
            leftovers = np.ones(pool.size, dtype=bool)
            leftovers[seed] = False
            sweep_positions.append(pool[leftovers])
            sweep_bounds.append(pool_bounds[leftovers])
        rest = group_order[n_seed_groups:]
        if rest.size:
            surviving = rest[group_bounds[rest] <= threshold]
            if surviving.size:
                starts = group_ids[surviving] * group
                positions = concat_ranges(
                    starts, np.minimum(starts + group, stop) - starts
                )
                positions = positions[keep[positions]]
                if positions.size:
                    sweep_positions.append(positions)
                    sweep_bounds.append(
                        envelope_bounds(
                            index.lower[positions],
                            index.upper[positions],
                            concept,
                        )
                    )
        positions = np.concatenate(sweep_positions)
        position_bounds = np.concatenate(sweep_bounds)
        survivors = np.nonzero(position_bounds <= threshold)[0]
        cursor = 0
        while cursor < survivors.size:
            chunk = survivors[cursor : cursor + self._chunk_bags]
            cursor += self._chunk_bags
            # The threshold only tightens: re-filter the chunk.
            chunk = chunk[position_bounds[chunk] <= _cutoff(box.value, floor)]
            if chunk.size == 0:
                continue
            distances = packed.min_distances_at(concept, positions[chunk])
            kept_idx.append(positions[chunk])
            kept_dist.append(distances)
            best = np.concatenate((best, distances))
            if best.size > k:
                best = np.partition(best, k - 1)[:k]
            if best.size >= k:
                box.update(float(best.max()))
        idx = np.concatenate(kept_idx)
        dist = np.concatenate(kept_dist)
        n_evaluated = int(idx.size)
        if dist.size > k:
            kth = np.partition(dist, k - 1)[k - 1]
            contenders = dist <= kth
            idx = idx[contenders]
            dist = dist[contenders]
        return idx, dist, n_evaluated
