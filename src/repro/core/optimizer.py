"""Unconstrained minimisers used by the Diverse Density trainer.

Two interchangeable backends minimise a smooth ``f: R^n -> R`` given a
``value_and_grad`` callable:

* :class:`ArmijoGradientDescent` — the bespoke substrate: steepest descent
  with backtracking (Armijo) line search.  This mirrors the "simple
  unconstrained minimization algorithm used in the original DD method"
  (Section 3.6.3) and has no dependencies beyond numpy.
* :class:`LBFGSOptimizer` — scipy's L-BFGS-B, much faster on the ~200-dim
  problems of the paper; the default for experiments.

Both return an :class:`OptimizationOutcome` so callers never need to care
which backend ran.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol

import numpy as np
from scipy import optimize as scipy_optimize

from repro.errors import OptimizationError

#: ``value_and_grad`` signature shared by all backends.
ValueAndGrad = Callable[[np.ndarray], tuple[float, np.ndarray]]


def row_dots(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Per-row dot products of two ``(R, m)`` matrices.

    Implemented with :func:`numpy.einsum` so every row's accumulation order
    is independent of the batch composition — the sequential solvers and
    their lockstep batched counterparts in :mod:`repro.core.engine` share
    this helper and therefore produce bit-identical scalars per restart.
    """
    return np.einsum("rm,rm->r", a, b)


def _dot(a: np.ndarray, b: np.ndarray) -> float:
    """Scalar dot product through :func:`row_dots` (rounding-compatible)."""
    return float(row_dots(a.reshape(1, -1), b.reshape(1, -1))[0])


@dataclass(frozen=True)
class OptimizationOutcome:
    """Result of one local minimisation.

    Attributes:
        x: the final point.
        value: objective value at ``x``.
        n_iterations: iterations (or function evaluations for L-BFGS) used.
        converged: whether the backend's stopping criterion was met (as
            opposed to hitting the iteration cap).
    """

    x: np.ndarray
    value: float
    n_iterations: int
    converged: bool


class Minimizer(Protocol):
    """Anything that can locally minimise a smooth function from a start."""

    def minimize(self, fun: ValueAndGrad, x0: np.ndarray) -> OptimizationOutcome:
        """Run the minimisation from ``x0``."""
        ...  # pragma: no cover - protocol


class ArmijoGradientDescent:
    """Steepest descent with backtracking line search.

    Args:
        max_iterations: hard cap on outer iterations.
        gradient_tolerance: stop when ``||grad||_inf`` falls below this.
        initial_step: first step size tried at each iteration.
        backtrack_factor: multiplicative step reduction on rejection.
        armijo_c: sufficient-decrease constant in ``(0, 1)``.
        max_backtracks: line-search evaluations per iteration before giving
            up on that direction (treated as convergence — the gradient step
            no longer makes progress at representable step sizes).
    """

    def __init__(
        self,
        max_iterations: int = 200,
        gradient_tolerance: float = 1e-5,
        initial_step: float = 1.0,
        backtrack_factor: float = 0.5,
        armijo_c: float = 1e-4,
        max_backtracks: int = 40,
    ) -> None:
        if max_iterations < 1:
            raise OptimizationError(f"max_iterations must be >= 1, got {max_iterations}")
        if not 0 < backtrack_factor < 1:
            raise OptimizationError(f"backtrack_factor must be in (0, 1), got {backtrack_factor}")
        if not 0 < armijo_c < 1:
            raise OptimizationError(f"armijo_c must be in (0, 1), got {armijo_c}")
        self._max_iterations = max_iterations
        self._gtol = gradient_tolerance
        self._step0 = initial_step
        self._rho = backtrack_factor
        self._c = armijo_c
        self._max_backtracks = max_backtracks

    def minimize(self, fun: ValueAndGrad, x0: np.ndarray) -> OptimizationOutcome:
        """Minimise ``fun`` from ``x0``; see :class:`OptimizationOutcome`."""
        x = np.asarray(x0, dtype=np.float64).copy()
        value, grad = fun(x)
        if not np.isfinite(value):
            raise OptimizationError("objective is non-finite at the starting point")
        step = self._step0
        for iteration in range(self._max_iterations):
            grad_norm = float(np.abs(grad).max()) if grad.size else 0.0
            if grad_norm <= self._gtol:
                return OptimizationOutcome(x, value, iteration, converged=True)
            direction = -grad
            slope = _dot(grad, direction)  # = -||grad||^2 < 0
            accepted = False
            trial_step = step
            for _ in range(self._max_backtracks):
                candidate = x + trial_step * direction
                cand_value, cand_grad = fun(candidate)
                if np.isfinite(cand_value) and cand_value <= value + self._c * trial_step * slope:
                    accepted = True
                    break
                trial_step *= self._rho
            if not accepted:
                # No representable step improves the objective: local optimum
                # to machine precision for this method.
                return OptimizationOutcome(x, value, iteration, converged=True)
            x, value, grad = candidate, cand_value, cand_grad
            # Allow the step to grow back so a single hard iteration does not
            # permanently shrink progress.
            step = min(self._step0, trial_step / self._rho)
        return OptimizationOutcome(x, value, self._max_iterations, converged=False)


class LBFGSOptimizer:
    """L-BFGS-B backend (scipy) for unconstrained minimisation.

    Args:
        max_iterations: iteration cap passed to scipy.
        gradient_tolerance: ``pgtol`` analogue; scipy's ``gtol``.
    """

    def __init__(self, max_iterations: int = 200, gradient_tolerance: float = 1e-6) -> None:
        if max_iterations < 1:
            raise OptimizationError(f"max_iterations must be >= 1, got {max_iterations}")
        self._max_iterations = max_iterations
        self._gtol = gradient_tolerance

    def minimize(self, fun: ValueAndGrad, x0: np.ndarray) -> OptimizationOutcome:
        """Minimise ``fun`` from ``x0``; see :class:`OptimizationOutcome`.

        Raises:
            OptimizationError: if the objective is non-finite at ``x0`` (a
                NaN objective would otherwise silently poison scipy's line
                search) or the solver returns a non-finite point.
        """
        x0 = np.asarray(x0, dtype=np.float64)
        initial_value, _ = fun(x0)
        if not np.isfinite(initial_value):
            raise OptimizationError("objective is non-finite at the starting point")
        result = scipy_optimize.minimize(
            fun,
            x0,
            jac=True,
            method="L-BFGS-B",
            options={"maxiter": self._max_iterations, "gtol": self._gtol},
        )
        if not np.all(np.isfinite(result.x)):
            raise OptimizationError("L-BFGS-B returned a non-finite point")
        return OptimizationOutcome(
            x=np.asarray(result.x, dtype=np.float64),
            value=float(result.fun),
            n_iterations=int(result.nit),
            converged=bool(result.success) or int(result.nit) >= self._max_iterations,
        )


def make_minimizer(
    name: str, max_iterations: int = 200, gradient_tolerance: float = 1e-6
) -> Minimizer:
    """Build a minimiser by name: ``"lbfgs"`` (default backend) or ``"armijo"``.

    Raises:
        OptimizationError: for an unknown backend name.
    """
    if name == "lbfgs":
        return LBFGSOptimizer(max_iterations, gradient_tolerance)
    if name == "armijo":
        return ArmijoGradientDescent(max_iterations, gradient_tolerance)
    raise OptimizationError(f"unknown minimiser {name!r}; known: 'lbfgs', 'armijo'")
