"""Failure-injection tests: the stack degrades loudly, not silently.

Each test wounds one layer (corrupt pixels, degenerate bags, hostile
configurations) and asserts the package raises its documented error type
rather than propagating NaNs or returning garbage rankings.
"""

import numpy as np
import pytest

from repro.bags.bag import Bag, BagSet
from repro.core.diverse_density import DiverseDensityTrainer, TrainerConfig
from repro.core.objective import DiverseDensityObjective
from repro.database.store import ImageDatabase
from repro.errors import (
    BagError,
    DatabaseError,
    FeatureError,
    ImageFormatError,
    ReproError,
    TrainingError,
)
from repro.imaging.features import FeatureConfig, FeatureExtractor
from repro.imaging.image import GrayImage


class TestCorruptImages:
    def test_nan_pixels_rejected_at_ingest(self):
        plane = np.full((16, 16), 0.5)
        plane[3, 3] = np.nan
        with pytest.raises(ImageFormatError):
            GrayImage(pixels=plane)

    def test_all_black_image_fails_featurisation_cleanly(self):
        database = ImageDatabase(
            feature_config=FeatureConfig(resolution=4, variance_threshold=0.0)
        )
        database.add_image(np.zeros((16, 16)) + 0.25, "flat", "flat-0")
        with pytest.raises(DatabaseError) as excinfo:
            database.instances_for("flat-0")
        assert "flat-0" in str(excinfo.value)

    def test_image_smaller_than_grid_fails_cleanly(self):
        extractor = FeatureExtractor(FeatureConfig(resolution=10))
        tiny = GrayImage(pixels=np.random.default_rng(0).uniform(size=(6, 6)))
        with pytest.raises((FeatureError, ReproError)):
            extractor.extract(tiny)


class TestDegenerateBags:
    def test_only_negative_bags_rejected_loudly(self):
        bag_set = BagSet(
            [Bag(instances=np.zeros((2, 3)), label=False, bag_id="n0")]
        )
        trainer = DiverseDensityTrainer(TrainerConfig(scheme="identical"))
        with pytest.raises(BagError):
            trainer.train(bag_set)

    def test_identical_positive_and_negative_bags_still_finite(self):
        # Contradictory supervision: the same instances labelled both ways.
        # The model cannot satisfy both, but must return a finite concept.
        data = np.random.default_rng(1).normal(size=(4, 3))
        bag_set = BagSet(
            [
                Bag(instances=data, label=True, bag_id="p"),
                Bag(instances=data.copy(), label=False, bag_id="n"),
            ]
        )
        result = DiverseDensityTrainer(
            TrainerConfig(scheme="identical", max_iterations=50)
        ).train(bag_set)
        assert np.isfinite(result.concept.nll)
        assert np.all(np.isfinite(result.concept.t))

    def test_single_instance_single_bag(self):
        bag_set = BagSet([Bag(instances=np.array([[1.0, 2.0]]), label=True, bag_id="p")])
        result = DiverseDensityTrainer(
            TrainerConfig(scheme="identical", max_iterations=30)
        ).train(bag_set)
        # With one positive instance and no negatives the optimum is the
        # instance itself.
        np.testing.assert_allclose(result.concept.t, [1.0, 2.0], atol=1e-3)

    def test_huge_coordinates_stay_finite(self):
        rng = np.random.default_rng(2)
        bag_set = BagSet(
            [
                Bag(instances=rng.normal(0, 1e6, size=(3, 2)), label=True, bag_id="p"),
                Bag(instances=rng.normal(0, 1e6, size=(3, 2)), label=False, bag_id="n"),
            ]
        )
        objective = DiverseDensityObjective(bag_set)
        value, grad_t, grad_w = objective.value_and_grad(
            np.zeros(2), np.ones(2)
        )
        assert np.isfinite(value)
        assert np.all(np.isfinite(grad_t))
        assert np.all(np.isfinite(grad_w))


class TestHostileConfigurations:
    def test_negative_beta_rejected_everywhere(self):
        from repro.core.schemes import make_scheme

        with pytest.raises(TrainingError):
            make_scheme("inequality", beta=-0.5)

    def test_concept_rejects_mismatched_query(self):
        from repro.core.concept import LearnedConcept

        concept = LearnedConcept(t=np.zeros(3), w=np.ones(3), nll=0.0)
        with pytest.raises(TrainingError):
            concept.bag_distance(np.zeros((2, 5)))

    def test_experiment_rejects_absurd_split(self, tiny_scene_db):
        from repro.eval.experiment import ExperimentConfig, RetrievalExperiment
        from repro.errors import SplitError

        config = ExperimentConfig(
            target_category="sunset", training_fraction=0.99, seed=0
        )
        # 6 images per category: 0.99 rounds to putting everything in
        # training, leaving no test images -> loud failure.
        with pytest.raises(SplitError):
            RetrievalExperiment(tiny_scene_db, config)

    def test_session_survives_feedback_with_no_false_positives(self, tiny_scene_db):
        # If the ranking is perfect there may be no false positives to
        # promote; the loop must handle an empty promotion gracefully.
        from repro.core.diverse_density import DiverseDensityTrainer, TrainerConfig
        from repro.core.feedback import FeedbackLoop, select_examples

        ids = tiny_scene_db.image_ids
        potential = [i for i in ids if int(i.split("-")[1]) < 4]
        test = [i for i in ids if int(i.split("-")[1]) >= 4]
        selection = select_examples(tiny_scene_db, potential, "sunset", 2, 2, seed=0)
        loop = FeedbackLoop(
            corpus=tiny_scene_db,
            trainer=DiverseDensityTrainer(
                TrainerConfig(scheme="identical", max_iterations=30)
            ),
            target_category="sunset",
            potential_ids=potential,
            test_ids=test,
            rounds=2,
            false_positives_per_round=100,  # asks for more than can exist
        )
        outcome = loop.run(selection)
        assert len(outcome.rounds) == 2
