"""Property-based tests of smoothing-and-sampling invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.imaging.smoothing import block_grid, smooth_and_sample


@st.composite
def image_and_resolution(draw):
    rows = draw(st.integers(min_value=12, max_value=80))
    cols = draw(st.integers(min_value=12, max_value=80))
    resolution = draw(st.integers(min_value=2, max_value=min(rows, cols, 12)))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    plane = np.random.default_rng(seed).uniform(size=(rows, cols))
    return plane, resolution


@given(image_and_resolution())
@settings(max_examples=100, deadline=None)
def test_output_shape_and_range(case):
    plane, resolution = case
    out = smooth_and_sample(plane, resolution)
    assert out.shape == (resolution, resolution)
    assert out.min() >= plane.min() - 1e-12
    assert out.max() <= plane.max() + 1e-12


@given(image_and_resolution())
@settings(max_examples=100, deadline=None)
def test_mirror_commutes(case):
    plane, resolution = case
    left = smooth_and_sample(plane[:, ::-1], resolution)
    right = smooth_and_sample(plane, resolution)[:, ::-1]
    np.testing.assert_allclose(left, right, atol=1e-10)


@given(image_and_resolution())
@settings(max_examples=100, deadline=None)
def test_vertical_flip_commutes(case):
    plane, resolution = case
    top = smooth_and_sample(plane[::-1, :], resolution)
    bottom = smooth_and_sample(plane, resolution)[::-1, :]
    np.testing.assert_allclose(top, bottom, atol=1e-10)


@given(image_and_resolution(), st.floats(min_value=-0.2, max_value=0.2))
@settings(max_examples=100, deadline=None)
def test_brightness_shift_equivariance(case, shift):
    plane, resolution = case
    shifted = np.clip(plane + shift, 0.0, 1.0)
    if not np.allclose(shifted - plane, shift):
        return  # clipping broke the pure shift; skip
    out_base = smooth_and_sample(plane, resolution)
    out_shifted = smooth_and_sample(shifted, resolution)
    np.testing.assert_allclose(out_shifted, out_base + shift, atol=1e-10)


@given(image_and_resolution())
@settings(max_examples=100, deadline=None)
def test_blocks_tile_with_expected_overlap(case):
    plane, resolution = case
    rows, cols = plane.shape
    row_starts, col_starts, block_rows, block_cols = block_grid(rows, cols, resolution)
    assert row_starts[0] == 0 and col_starts[0] == 0
    assert row_starts[-1] + block_rows == rows
    assert col_starts[-1] + block_cols == cols
    assert np.all(np.diff(row_starts) >= 0)


@given(
    hnp.arrays(
        dtype=np.float64,
        shape=st.tuples(
            st.integers(min_value=10, max_value=40),
            st.integers(min_value=10, max_value=40),
        ),
        elements=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    )
)
@settings(max_examples=100, deadline=None)
def test_constant_regions_stay_constant(plane):
    constant = np.full_like(plane, float(plane.flat[0]))
    out = smooth_and_sample(constant, 5)
    np.testing.assert_allclose(out, plane.flat[0], atol=1e-12)
