"""Warm-worker snapshot tests: full save/load round-trip, zero-retrain
restores, corpus rehydration, and failure modes."""

from __future__ import annotations

import pytest

from repro.api.query import Query
from repro.api.service import RetrievalService
from repro.errors import ServeError
from repro.serve.snapshot import load_service, save_service

_PARAMS = {"scheme": "identical", "max_iterations": 25, "seed": 5}


def _query(database, learner="dd", params=None, **kwargs) -> Query:
    ids = database.ids_in_category("waterfall")
    negs = database.ids_in_category("field")
    defaults = dict(
        positive_ids=ids[:2],
        negative_ids=negs[:2],
        learner=learner,
        params=dict(_PARAMS) if params is None else params,
        top_k=5,
    )
    defaults.update(kwargs)
    return Query(**defaults)


@pytest.fixture()
def warmed(tiny_scene_db):
    """A service that has served one query (cache + packed corpus warm)."""
    service = RetrievalService(tiny_scene_db)
    query = _query(tiny_scene_db)
    reference = service.query(query)
    return service, query, reference


class TestRoundTrip:
    def test_restored_worker_answers_with_zero_retrains(self, warmed, tmp_path):
        """The acceptance property: first repeated query is a cache hit."""
        service, query, reference = warmed
        info = save_service(service, tmp_path / "worker.npz")
        assert info.n_cache_entries >= 1
        restored, load_info = load_service(info.path)
        assert load_info.n_cache_entries == info.n_cache_entries
        result = restored.query(query)
        stats = restored.cache_stats
        assert stats.misses == 0, "restored worker retrained"
        assert stats.hits == 1
        assert result.ranking.image_ids == reference.ranking.image_ids
        assert result.ranking.distances.tolist() == (
            reference.ranking.distances.tolist()
        )

    def test_packed_corpus_restored_without_rebuild(self, warmed, tmp_path):
        service, _, _ = warmed
        info = save_service(service, tmp_path / "worker.npz")
        restored, _ = load_service(info.path)
        packed = restored.database.cached_packed
        assert packed is not None, "packed region corpus was not restored"
        original = service.database.cached_packed
        assert packed.image_ids == original.image_ids
        assert packed.instances.shape == original.instances.shape

    def test_shard_index_rides_along(self, warmed, tmp_path):
        """A built rank index is snapshotted and restored without a rebuild."""
        import numpy as np

        service, query, reference = warmed
        original = service.database.packed()
        index = original.shard_index(2)
        info = save_service(service, tmp_path / "worker.npz")
        restored, _ = load_service(info.path)
        packed = restored.database.cached_packed
        assert packed is not None
        adopted = packed.cached_shard_index
        assert adopted is not None, "shard index was not restored"
        assert adopted.n_shards == index.n_shards
        np.testing.assert_array_equal(adopted.lower, index.lower)
        np.testing.assert_array_equal(adopted.upper, index.upper)
        # The restored index serves the pruned path with identical output.
        from repro.core.sharding import ShardedRanker

        fast = ShardedRanker().rank(
            reference.concept, packed, top_k=5, index=adopted,
            exclude=query.example_ids,
        )
        assert fast.image_ids == reference.ranking.image_ids

    def test_shard_index_group_size_round_trips(self, warmed, tmp_path):
        # Regression: the manifest used to omit group_size, silently
        # restoring a non-default index with DEFAULT_GROUP_BAGS.
        from repro.core.sharding import ShardIndex

        service, _, _ = warmed
        original = service.database.packed()
        original.adopt_shard_index(
            ShardIndex.build(original, 2, group_size=3)
        )
        info = save_service(service, tmp_path / "worker.npz")
        restored, _ = load_service(info.path)
        adopted = restored.database.cached_packed.cached_shard_index
        assert adopted is not None
        assert adopted.group_size == 3

    def test_snapshot_without_index_still_loads(self, tmp_path):
        # A fresh database: the shared fixture may already carry an index.
        from repro.datasets.loader import quick_database
        from repro.imaging.features import FeatureConfig
        from repro.imaging.regions import region_family

        database = quick_database(
            "scenes", images_per_category=2, size=(48, 48), seed=3,
            feature_config=FeatureConfig(
                resolution=5, region_family=region_family("small9")
            ),
        )
        service = RetrievalService(database)
        assert database.packed().cached_shard_index is None
        info = save_service(service, tmp_path / "worker.npz")
        restored, _ = load_service(info.path)
        assert restored.database.cached_packed.cached_shard_index is None

    def test_manifest_with_missing_index_arrays_raises_database_error(
        self, warmed, tmp_path
    ):
        import json

        import numpy as np

        from repro.errors import DatabaseError

        service, _, _ = warmed
        service.database.packed().shard_index(2)
        info = save_service(service, tmp_path / "worker.npz")
        with np.load(info.path) as payload:
            arrays = {k: payload[k] for k in payload.files}
        manifest = json.loads(bytes(arrays["manifest"]).decode("utf-8"))
        # The index rides inside the database payload (format v3).
        index_info = manifest["database"]["packed"]["index"]
        assert index_info is not None
        del arrays[index_info["lower"]]
        np.savez_compressed(tmp_path / "corrupt.npz", **arrays)
        with pytest.raises(DatabaseError, match="shard-index"):
            load_service(tmp_path / "corrupt.npz")

    def test_legacy_database_index_key_still_adopted(self, warmed, tmp_path):
        """Old snapshots stashed the index beside the database payload."""
        import json

        import numpy as np

        service, _, _ = warmed
        index = service.database.packed().shard_index(2)
        info = save_service(service, tmp_path / "worker.npz")
        with np.load(info.path) as payload:
            arrays = {k: payload[k] for k in payload.files}
        manifest = json.loads(bytes(arrays["manifest"]).decode("utf-8"))
        # Rewrite to the pre-v3 layout: index beside the database payload
        # under the legacy manifest key, nothing inside it.
        index_info = manifest["database"]["packed"].pop("index")
        manifest["database_index"] = index_info
        arrays["manifest"] = np.frombuffer(
            json.dumps(manifest).encode("utf-8"), dtype=np.uint8
        )
        legacy = tmp_path / "legacy.npz"
        np.savez_compressed(legacy, **arrays)
        restored, _ = load_service(legacy)
        adopted = restored.database.cached_packed.cached_shard_index
        assert adopted is not None, "legacy index key was ignored"
        np.testing.assert_array_equal(adopted.lower, index.lower)

    def test_load_service_forwards_rank_knobs(self, warmed, tmp_path):
        service, _, _ = warmed
        info = save_service(service, tmp_path / "worker.npz")
        restored, _ = load_service(info.path, rank_index=False, rank_shards=4)
        assert restored.rank_index is False
        assert restored.rank_shards == 4

    def test_extra_corpora_survive(self, tiny_scene_db, tmp_path):
        """A warmed colour corpus rides along and serves fit + rank."""
        service = RetrievalService(tiny_scene_db)
        service.warm("maron-ratan")
        query = _query(
            tiny_scene_db, learner="maron-ratan",
            params={"max_iterations": 20, "seed": 5},
        )
        reference = service.query(query)
        info = save_service(service, tmp_path / "worker.npz")
        assert set(info.corpus_keys) == set(service.corpus_keys)
        restored, load_info = load_service(info.path)
        assert set(load_info.corpus_keys) == set(info.corpus_keys)
        result = restored.query(query)
        assert restored.cache_stats.misses == 0
        assert result.ranking.image_ids == reference.ranking.image_ids

    def test_history_bound_round_trips_by_default(self, tiny_scene_db, tmp_path):
        service = RetrievalService(tiny_scene_db, max_history=7)
        service.warm("dd")
        info = save_service(service, tmp_path / "worker.npz")
        restored, _ = load_service(info.path)
        assert restored.max_history == 7
        restored2, _ = load_service(info.path, max_history=3)
        assert restored2.max_history == 3

    def test_cache_disabled_on_load_drops_entries(self, warmed, tmp_path):
        service, query, reference = warmed
        info = save_service(service, tmp_path / "worker.npz")
        restored, load_info = load_service(info.path, cache_size=0)
        assert restored.concept_cache is None
        assert load_info.n_cache_entries == 0
        # Still correct — it just has to retrain.
        result = restored.query(query)
        assert result.ranking.image_ids == reference.ranking.image_ids


class TestFailureModes:
    def test_missing_file(self, tmp_path):
        with pytest.raises(ServeError, match="does not exist"):
            load_service(tmp_path / "nope.npz")

    def test_unreadable_file(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"definitely not a zip")
        with pytest.raises(ServeError, match="not a readable"):
            load_service(path)

    def test_unsupported_snapshot_version(self, warmed, tmp_path, monkeypatch):
        service, _, _ = warmed
        import repro.serve.snapshot as snapshot_module

        monkeypatch.setattr(snapshot_module, "_SNAPSHOT_VERSION", 99)
        info = save_service(service, tmp_path / "future.npz")
        monkeypatch.undo()
        with pytest.raises(ServeError, match="version 99"):
            load_service(info.path)

    def test_future_wire_cache_entries_are_skipped_not_fatal(
        self, warmed, tmp_path
    ):
        """Unreconstructable cache entries cost a cold slot, not the restore."""
        import json

        import numpy as np

        service, query, reference = warmed
        info = save_service(service, tmp_path / "worker.npz")
        with np.load(info.path) as payload:
            manifest = json.loads(bytes(payload["manifest"]).decode("utf-8"))
            arrays = {
                key: payload[key] for key in payload.files if key != "manifest"
            }
        for entry in manifest["cache"]:
            entry["payload"]["version"] = 99  # written by a future codec
        arrays["manifest"] = np.frombuffer(
            json.dumps(manifest).encode("utf-8"), dtype=np.uint8
        )
        future = tmp_path / "future-cache.npz"
        np.savez_compressed(future, **arrays)
        restored, load_info = load_service(future)
        assert load_info.n_cache_entries == 0
        assert load_info.n_cache_skipped == len(manifest["cache"])
        # Cold but correct: the query retrains and matches the reference.
        result = restored.query(query)
        assert result.ranking.image_ids == reference.ranking.image_ids

    def test_npz_suffix_is_enforced(self, warmed, tmp_path):
        service, _, _ = warmed
        info = save_service(service, tmp_path / "worker.snap")
        assert info.path.suffix == ".npz"
        restored, _ = load_service(info.path)
        assert len(restored.database) == len(service.database)
