"""Unit tests for the EM-DD extension trainer."""

import numpy as np
import pytest

from repro.core.diverse_density import DiverseDensityTrainer, TrainerConfig
from repro.core.emdd import EMDDConfig, EMDDTrainer
from repro.errors import BagError, TrainingError
from tests.conftest import make_planted_bag_set


class TestEMDDConfig:
    def test_defaults(self):
        config = EMDDConfig()
        assert config.inner_scheme == "identical"
        assert config.max_em_iterations == 10

    def test_invalid_em_iterations(self):
        with pytest.raises(TrainingError):
            EMDDConfig(max_em_iterations=0)

    def test_invalid_tolerance(self):
        with pytest.raises(TrainingError):
            EMDDConfig(tolerance=-1.0)

    def test_resolve_named_scheme(self):
        assert EMDDConfig(inner_scheme="original").resolve_scheme().name == "original"


class TestEMDDTraining:
    def test_recovers_planted_concept(self):
        bag_set, concept = make_planted_bag_set(n_dims=4, seed=31)
        trainer = EMDDTrainer(EMDDConfig(max_inner_iterations=100))
        result = trainer.train(bag_set)
        assert np.linalg.norm(result.concept.t - concept) < 0.5

    def test_nll_comparable_to_dd(self):
        # EM-DD is scored on the full noisy-or objective, so its best NLL
        # should land close to the full DD trainer's on an easy problem.
        bag_set, _ = make_planted_bag_set(n_dims=3, seed=32)
        dd = DiverseDensityTrainer(
            TrainerConfig(scheme="identical", max_iterations=120)
        ).train(bag_set)
        emdd = EMDDTrainer(EMDDConfig(max_inner_iterations=120)).train(bag_set)
        assert emdd.concept.nll <= dd.concept.nll * 1.5 + 1.0

    def test_requires_positive_bags(self):
        from repro.bags.bag import Bag, BagSet

        bag_set = BagSet([Bag(instances=np.zeros((2, 3)), label=False, bag_id="n")])
        with pytest.raises(BagError):
            EMDDTrainer().train(bag_set)

    def test_scheme_label_in_concept(self):
        bag_set, _ = make_planted_bag_set(seed=33)
        result = EMDDTrainer(EMDDConfig(inner_scheme="identical")).train(bag_set)
        assert result.concept.scheme.startswith("emdd(")

    def test_subset_restarts(self):
        bag_set, _ = make_planted_bag_set(
            n_positive=4, instances_per_bag=4, seed=34
        )
        trainer = EMDDTrainer(EMDDConfig(start_bag_subset=2, seed=5))
        result = trainer.train(bag_set)
        assert result.n_starts == 2 * 4
        assert len({record.bag_id for record in result.starts}) == 2

    def test_stride_restarts(self):
        bag_set, _ = make_planted_bag_set(
            n_positive=2, instances_per_bag=6, seed=35
        )
        trainer = EMDDTrainer(EMDDConfig(start_instance_stride=3))
        assert trainer.train(bag_set).n_starts == 4

    def test_deterministic(self):
        bag_set, _ = make_planted_bag_set(seed=36)
        config = EMDDConfig(max_inner_iterations=60)
        first = EMDDTrainer(config).train(bag_set)
        second = EMDDTrainer(config).train(bag_set)
        np.testing.assert_allclose(first.concept.t, second.concept.t)

    def test_constrained_inner_scheme(self):
        from repro.core.projection import is_feasible

        bag_set, _ = make_planted_bag_set(seed=37)
        trainer = EMDDTrainer(
            EMDDConfig(inner_scheme="inequality", beta=0.5, max_inner_iterations=60)
        )
        result = trainer.train(bag_set)
        assert is_feasible(result.concept.w, 0.5, tolerance=1e-5)

    def test_fewer_objective_touches_than_dd(self):
        # The point of EM-DD: each M-step objective touches one instance
        # per bag.  Proxy check: wall time no worse than 3x DD on the same
        # problem with the same restart budget (usually much faster; the
        # loose bound keeps the test robust on shared CI boxes).
        bag_set, _ = make_planted_bag_set(
            n_positive=4, n_negative=4, instances_per_bag=10, seed=38
        )
        dd = DiverseDensityTrainer(
            TrainerConfig(scheme="identical", max_iterations=80)
        ).train(bag_set)
        emdd = EMDDTrainer(EMDDConfig(max_inner_iterations=80)).train(bag_set)
        assert emdd.elapsed_seconds <= max(3.0 * dd.elapsed_seconds, 5.0)

    def test_retrieval_quality_on_real_bags(self, tiny_scene_db):
        from repro.bags.bag import BagSet
        from repro.core.retrieval import RetrievalEngine
        from repro.eval.metrics import average_precision

        bag_set = BagSet()
        for image_id in tiny_scene_db.ids_in_category("sunset")[:3]:
            bag_set.add(tiny_scene_db.bag_for(image_id, label=True))
        for image_id in tiny_scene_db.ids_in_category("waterfall")[:3]:
            bag_set.add(tiny_scene_db.bag_for(image_id, label=False))
        concept = EMDDTrainer(EMDDConfig(max_inner_iterations=60)).train(bag_set).concept
        examples = {bag.bag_id for bag in bag_set.bags}
        ranking = RetrievalEngine().rank(
            concept, tiny_scene_db.retrieval_candidates(), exclude=examples
        )
        ap = average_precision(ranking.relevance("sunset"))
        base_rate = 3 / (len(tiny_scene_db) - 6)
        assert ap > base_rate + 0.1
