"""Tests for the string-name dataset registry in :mod:`repro.datasets.loader`."""

import pytest

from repro.database.store import ImageDatabase
from repro.datasets import available_datasets, make_dataset, register_dataset
from repro.errors import DatasetError


class TestRegistry:
    def test_builtin_names_registered(self):
        names = available_datasets()
        for expected in ("scenes", "objects", "quick", "quick-scenes", "quick-objects"):
            assert expected in names

    def test_make_dataset_builds_database(self):
        database = make_dataset(
            "quick-scenes", images_per_category=2, size=(48, 48), seed=3
        )
        assert isinstance(database, ImageDatabase)
        assert len(database) == 10

    def test_unknown_name(self):
        with pytest.raises(DatasetError, match="unknown dataset"):
            make_dataset("corel")

    def test_bad_params_fail_before_building(self):
        with pytest.raises(DatasetError, match="invalid parameters"):
            make_dataset("quick-scenes", images_per_category=2, nonsense_knob=1)

    def test_register_and_overwrite(self):
        marker = object()
        register_dataset("registry-test", lambda: marker)
        try:
            assert make_dataset("registry-test") is marker
            with pytest.raises(DatasetError, match="already registered"):
                register_dataset("registry-test", lambda: None)
            register_dataset("registry-test", lambda: None, overwrite=True)
            assert make_dataset("registry-test") is None
        finally:
            from repro.datasets.loader import _DATASETS

            _DATASETS.pop("registry-test", None)

    def test_empty_name_rejected(self):
        with pytest.raises(DatasetError, match="non-empty"):
            register_dataset("", lambda: None)


class TestCliIntegration:
    def test_build_db_resolves_registry_names(self, tmp_path, capsys):
        from repro.cli import main
        from repro.database.persistence import load_database

        out = tmp_path / "db.npz"
        code = main(
            [
                "build-db", "--kind", "quick-objects", "--per-category", "2",
                "--size", "48", "--seed", "1", "--out", str(out),
            ]
        )
        assert code == 0
        assert "wrote" in capsys.readouterr().out
        assert len(load_database(out)) > 0

    def test_build_db_unknown_kind_exits_with_error(self, tmp_path, capsys):
        from repro.cli import main

        code = main(
            ["build-db", "--kind", "corel", "--per-category", "2",
             "--out", str(tmp_path / "db.npz")]
        )
        assert code == 2
        assert "unknown dataset" in capsys.readouterr().err
