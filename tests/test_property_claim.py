"""Property-based tests of the Section 3.4 Claim.

The Claim is the load-bearing identity of the whole feature representation:
for any vectors and any non-negative weights,

    ||B_ij - B_lm||^2_w = 2n - 2n * Corr_w(A_ij, A_lm)

and hence distance ranking on normalised vectors equals reversed correlation
ranking on raw vectors.  Hypothesis searches for counterexamples.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.imaging.correlation import weighted_correlation
from repro.imaging.transform import (
    normalize_feature,
    weighted_squared_distance,
)

# Vectors with enough spread that sigma' is comfortably nonzero.
_DIMS = st.integers(min_value=3, max_value=40)


def vector_strategy(n: int):
    return hnp.arrays(
        dtype=np.float64,
        shape=n,
        elements=st.floats(min_value=-100, max_value=100, allow_nan=False),
    ).filter(lambda v: float(np.std(v)) > 1e-3)


def weight_strategy(n: int):
    return hnp.arrays(
        dtype=np.float64,
        shape=n,
        elements=st.floats(min_value=0.05, max_value=5.0, allow_nan=False),
    )


@st.composite
def claim_case(draw):
    n = draw(_DIMS)
    a1 = draw(vector_strategy(n))
    a2 = draw(vector_strategy(n))
    w = draw(weight_strategy(n))
    return a1, a2, w


@given(claim_case())
@settings(max_examples=150, deadline=None)
def test_distance_equals_two_n_minus_two_n_corr(case):
    a1, a2, w = case
    n = a1.size
    try:
        b1 = normalize_feature(a1, w)
        b2 = normalize_feature(a2, w)
        corr = weighted_correlation(a1, a2, w)
    except Exception:
        # Weighted-degenerate input (sigma' ~ 0); the Claim presumes
        # non-degenerate vectors.
        return
    distance = weighted_squared_distance(b1, b2, w)
    assert distance == pytest.approx(2 * n * (1 - corr), rel=1e-6, abs=1e-6)


@given(claim_case())
@settings(max_examples=150, deadline=None)
def test_lemma_weighted_norm_is_n(case):
    a1, _, w = case
    try:
        b1 = normalize_feature(a1, w)
    except Exception:
        return
    assert float(w @ (b1 * b1)) == pytest.approx(a1.size, rel=1e-8)


@given(claim_case(), claim_case())
@settings(max_examples=100, deadline=None)
def test_ordering_equivalence(case_a, case_b):
    # Use one shared weight vector (truncated/padded to a common size).
    a1, a2, w = case_a
    c1, c2, _ = case_b
    n = min(a1.size, a2.size, c1.size, c2.size)
    a1, a2, c1, c2, w = a1[:n], a2[:n], c1[:n], c2[:n], w[:n]
    if n < 3:
        return
    try:
        corr_a = weighted_correlation(a1, a2, w)
        corr_b = weighted_correlation(c1, c2, w)
        d_a = weighted_squared_distance(
            normalize_feature(a1, w), normalize_feature(a2, w), w
        )
        d_b = weighted_squared_distance(
            normalize_feature(c1, w), normalize_feature(c2, w), w
        )
    except Exception:
        return
    # Claim parts 1-3: Corr(pair a) > Corr(pair b) iff dist(a) < dist(b).
    if corr_a > corr_b + 1e-9:
        assert d_a < d_b + 1e-6
    elif corr_b > corr_a + 1e-9:
        assert d_b < d_a + 1e-6


@given(claim_case())
@settings(max_examples=100, deadline=None)
def test_distance_bounds_match_correlation_bounds(case):
    # Corr in [-1, 1] implies distance in [0, 4n].
    a1, a2, w = case
    try:
        b1 = normalize_feature(a1, w)
        b2 = normalize_feature(a2, w)
    except Exception:
        return
    distance = weighted_squared_distance(b1, b2, w)
    assert -1e-6 <= distance <= 4 * a1.size + 1e-6
