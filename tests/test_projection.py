"""Unit tests for the constraint set projection and constrained solvers."""

import numpy as np
import pytest

from repro.core.projection import (
    ProjectedGradientDescent,
    SLSQPBackend,
    is_feasible,
    project_weights,
)
from repro.errors import OptimizationError


class TestProjectWeights:
    def test_feasible_point_clipped_only(self):
        w = np.array([0.5, 0.8, 0.9, 1.0])
        out = project_weights(w, beta=0.5)
        np.testing.assert_allclose(out, w)

    def test_box_clipping(self):
        w = np.array([-0.5, 1.5, 0.3])
        out = project_weights(w, beta=0.0)
        np.testing.assert_allclose(out, [0.0, 1.0, 0.3])

    def test_sum_constraint_enforced(self):
        w = np.zeros(4)
        out = project_weights(w, beta=0.5)
        assert out.sum() == pytest.approx(2.0, abs=1e-6)

    def test_result_always_feasible(self):
        rng = np.random.default_rng(0)
        for beta in (0.0, 0.25, 0.5, 0.75, 1.0):
            for _ in range(20):
                w = rng.normal(0, 2, size=rng.integers(2, 30))
                out = project_weights(w, beta)
                assert is_feasible(out, beta, tolerance=1e-6)

    def test_idempotent(self):
        rng = np.random.default_rng(1)
        for _ in range(10):
            w = rng.normal(0, 2, size=10)
            once = project_weights(w, 0.6)
            twice = project_weights(once, 0.6)
            np.testing.assert_allclose(once, twice, atol=1e-9)

    def test_beta_one_forces_all_ones(self):
        w = np.random.default_rng(2).normal(size=8)
        out = project_weights(w, beta=1.0)
        np.testing.assert_allclose(out, 1.0, atol=1e-6)

    def test_projection_is_nearest_point(self):
        # Brute-force check on a small grid: no feasible grid point is
        # closer to y than the projection.
        rng = np.random.default_rng(3)
        beta = 0.6
        for _ in range(5):
            y = rng.normal(0, 1.5, size=3)
            projected = project_weights(y, beta)
            best = np.inf
            grid = np.linspace(0, 1, 21)
            for a in grid:
                for b in grid:
                    for c in grid:
                        candidate = np.array([a, b, c])
                        if candidate.sum() >= beta * 3 - 1e-12:
                            best = min(best, float(((candidate - y) ** 2).sum()))
            assert float(((projected - y) ** 2).sum()) <= best + 1e-4

    def test_kkt_shift_structure(self):
        # When the sum constraint is active the projection has the form
        # clip(y + lam, 0, 1) for a single scalar lam >= 0.
        y = np.array([-0.2, 0.1, 0.4, -0.6])
        beta = 0.7
        projected = project_weights(y, beta)
        interior = (projected > 1e-9) & (projected < 1 - 1e-9)
        if interior.sum() >= 2:
            shifts = (projected - y)[interior]
            assert np.allclose(shifts, shifts[0], atol=1e-6)
            assert shifts[0] >= -1e-9

    def test_invalid_beta(self):
        with pytest.raises(OptimizationError):
            project_weights(np.zeros(3), beta=1.5)

    def test_empty_vector(self):
        with pytest.raises(OptimizationError):
            project_weights(np.array([]), beta=0.5)


class TestIsFeasible:
    def test_accepts_interior(self):
        assert is_feasible(np.array([0.5, 0.6]), beta=0.5)

    def test_rejects_outside_box(self):
        assert not is_feasible(np.array([1.2, 0.5]), beta=0.0)

    def test_rejects_low_sum(self):
        assert not is_feasible(np.array([0.1, 0.1]), beta=0.9)

    def test_rejects_empty(self):
        assert not is_feasible(np.array([]), beta=0.5)


def constrained_quadratic(t_center: np.ndarray, w_center: np.ndarray):
    """Separable quadratic over (t, w) for solver tests."""

    def fun(t: np.ndarray, w: np.ndarray):
        dt = t - t_center
        dw = w - w_center
        value = float(0.5 * (dt @ dt) + 0.5 * (dw @ dw))
        return value, dt.copy(), dw.copy()

    return fun


@pytest.mark.parametrize("solver_cls", [ProjectedGradientDescent, SLSQPBackend])
class TestConstrainedSolvers:
    def test_interior_optimum_found(self, solver_cls):
        t_center = np.array([2.0, -1.0])
        w_center = np.array([0.5, 0.7])  # feasible for beta=0.4
        solver = solver_cls(beta=0.4)
        outcome = solver.minimize(
            constrained_quadratic(t_center, w_center), np.zeros(2), np.ones(2) * 0.6
        )
        np.testing.assert_allclose(outcome.t, t_center, atol=1e-3)
        np.testing.assert_allclose(outcome.w, w_center, atol=1e-3)

    def test_boundary_optimum_projected(self, solver_cls):
        # Unconstrained optimum w = (0, 0) violates sum >= 1.2; constrained
        # optimum is the projection (0.6, 0.6).
        t_center = np.zeros(2)
        w_center = np.zeros(2)
        solver = solver_cls(beta=0.6)
        outcome = solver.minimize(
            constrained_quadratic(t_center, w_center), np.ones(2), np.ones(2)
        )
        assert outcome.w.sum() >= 1.2 - 1e-6
        np.testing.assert_allclose(outcome.w, [0.6, 0.6], atol=1e-2)

    def test_result_feasible(self, solver_cls):
        solver = solver_cls(beta=0.5)
        outcome = solver.minimize(
            constrained_quadratic(np.zeros(3), np.array([0.1, 0.0, 0.2])),
            np.zeros(3),
            np.ones(3),
        )
        assert is_feasible(outcome.w, 0.5, tolerance=1e-6)

    def test_invalid_beta_rejected(self, solver_cls):
        with pytest.raises(OptimizationError):
            solver_cls(beta=-0.1)


class TestProjectedGradientSpecifics:
    def test_invalid_iterations(self):
        with pytest.raises(OptimizationError):
            ProjectedGradientDescent(beta=0.5, max_iterations=0)

    def test_nonfinite_start_raises(self):
        def bad(t, w):
            return np.nan, np.zeros_like(t), np.zeros_like(w)

        solver = ProjectedGradientDescent(beta=0.5)
        with pytest.raises(OptimizationError):
            solver.minimize(bad, np.zeros(2), np.ones(2))

    def test_beta_property(self):
        assert ProjectedGradientDescent(beta=0.3).beta == pytest.approx(0.3)
        assert SLSQPBackend(beta=0.7).beta == pytest.approx(0.7)
