"""Unit tests for automatic beta selection (Ch. 5 future work)."""

import numpy as np
import pytest

from repro.core.beta_selection import (
    DEFAULT_BETA_GRID,
    BetaSelection,
    select_beta,
)
from repro.core.feedback import ExampleSelection, select_examples
from repro.errors import TrainingError


@pytest.fixture(scope="module")
def corpus_and_selection():
    from repro.datasets.loader import quick_database
    from repro.imaging.features import FeatureConfig
    from repro.imaging.regions import region_family

    config = FeatureConfig(resolution=6, region_family=region_family("small9"))
    database = quick_database(
        "scenes", images_per_category=6, size=(48, 48), seed=8, feature_config=config
    )
    database.precompute_features()
    validation_ids = database.image_ids
    selection = select_examples(
        database, validation_ids, "sunset", n_positive=2, n_negative=2, seed=1
    )
    return database, selection, validation_ids


class TestSelectBeta:
    def test_returns_grid_member(self, corpus_and_selection):
        database, selection, validation_ids = corpus_and_selection
        result = select_beta(
            database, selection, "sunset", validation_ids,
            betas=(0.25, 0.75), max_iterations=30,
        )
        assert result.best_beta in (0.25, 0.75)
        assert len(result.candidates) == 2

    def test_candidates_carry_validation_ap(self, corpus_and_selection):
        database, selection, validation_ids = corpus_and_selection
        result = select_beta(
            database, selection, "sunset", validation_ids,
            betas=(0.5,), max_iterations=30,
        )
        candidate = result.candidates[0]
        assert 0.0 <= candidate.validation_ap <= 1.0
        assert np.isfinite(candidate.nll)

    def test_best_property_matches_best_beta(self, corpus_and_selection):
        database, selection, validation_ids = corpus_and_selection
        result = select_beta(
            database, selection, "sunset", validation_ids,
            betas=(0.25, 1.0), max_iterations=30,
        )
        assert result.best.beta == result.best_beta
        assert result.best.validation_ap == max(
            c.validation_ap for c in result.candidates
        )

    def test_tie_breaks_toward_larger_beta(self):
        # Construct directly: two candidates with equal AP.
        from repro.core.beta_selection import BetaCandidate

        selection = BetaSelection(
            best_beta=1.0,
            candidates=(
                BetaCandidate(0.25, 0.8, 1.0),
                BetaCandidate(1.0, 0.8, 1.0),
            ),
        )
        assert selection.best.beta == 1.0

    def test_empty_grid_rejected(self, corpus_and_selection):
        database, selection, validation_ids = corpus_and_selection
        with pytest.raises(TrainingError):
            select_beta(database, selection, "sunset", validation_ids, betas=())

    def test_no_validation_images_rejected(self, corpus_and_selection):
        database, selection, _ = corpus_and_selection
        only_examples = tuple(selection.positive_ids) + tuple(selection.negative_ids)
        with pytest.raises(TrainingError):
            select_beta(database, selection, "sunset", only_examples, betas=(0.5,))

    def test_default_grid_shape(self):
        assert DEFAULT_BETA_GRID == (0.1, 0.25, 0.5, 0.75, 1.0)

    def test_deterministic(self, corpus_and_selection):
        database, selection, validation_ids = corpus_and_selection
        kwargs = dict(betas=(0.25, 0.75), max_iterations=30, seed=4)
        first = select_beta(database, selection, "sunset", validation_ids, **kwargs)
        second = select_beta(database, selection, "sunset", validation_ids, **kwargs)
        assert first == second
