"""Unit tests for database snapshots (save/load roundtrips)."""

import numpy as np
import pytest

from repro.database.persistence import load_database, save_database
from repro.database.store import ImageDatabase
from repro.errors import DatabaseError
from repro.imaging.features import FeatureConfig
from repro.imaging.regions import region_family


def make_db() -> ImageDatabase:
    config = FeatureConfig(resolution=5, region_family=region_family("small9"))
    database = ImageDatabase(feature_config=config, name="snap")
    rng = np.random.default_rng(0)
    database.add_image(rng.uniform(0.1, 0.9, (24, 24)), "gray-cat", "g-0")
    database.add_image(rng.uniform(0.1, 0.9, (24, 24, 3)), "rgb-cat", "c-0")
    return database


class TestRoundtrip:
    def test_pixels_and_labels_survive(self, tmp_path):
        database = make_db()
        path = save_database(database, tmp_path / "snap.npz")
        restored = load_database(path)
        assert len(restored) == 2
        assert restored.name == "snap"
        assert restored.categories() == ("gray-cat", "rgb-cat")
        np.testing.assert_allclose(
            restored.record("g-0").image.pixels, database.record("g-0").image.pixels
        )

    def test_rgb_survives(self, tmp_path):
        database = make_db()
        restored = load_database(save_database(database, tmp_path / "s.npz"))
        np.testing.assert_allclose(
            restored.record("c-0").image.rgb, database.record("c-0").image.rgb
        )
        assert restored.record("g-0").image.rgb is None

    def test_feature_config_survives(self, tmp_path):
        database = make_db()
        restored = load_database(save_database(database, tmp_path / "s.npz"))
        assert restored.feature_config.resolution == 5
        assert restored.feature_config.region_family.name == "small9"

    def test_features_identical_after_roundtrip(self, tmp_path):
        database = make_db()
        before = database.instances_for("g-0")
        restored = load_database(save_database(database, tmp_path / "s.npz"))
        np.testing.assert_allclose(restored.instances_for("g-0"), before)

    def test_suffix_added(self, tmp_path):
        path = save_database(make_db(), tmp_path / "noext")
        assert path.suffix == ".npz"


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(DatabaseError):
            load_database(tmp_path / "missing.npz")

    def test_malformed_snapshot(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, stuff=np.zeros(3))
        with pytest.raises(DatabaseError):
            load_database(path)

    def test_garbage_file(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"this is not a zip archive")
        with pytest.raises(DatabaseError):
            load_database(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.npz"
        path.write_bytes(b"")
        with pytest.raises(DatabaseError):
            load_database(path)
