"""Unit tests for database snapshots (save/load roundtrips)."""

import numpy as np
import pytest

from repro.database.persistence import load_database, save_database
from repro.database.store import ImageDatabase
from repro.errors import DatabaseError
from repro.imaging.features import FeatureConfig
from repro.imaging.regions import region_family


def make_db() -> ImageDatabase:
    config = FeatureConfig(resolution=5, region_family=region_family("small9"))
    database = ImageDatabase(feature_config=config, name="snap")
    rng = np.random.default_rng(0)
    database.add_image(rng.uniform(0.1, 0.9, (24, 24)), "gray-cat", "g-0")
    database.add_image(rng.uniform(0.1, 0.9, (24, 24, 3)), "rgb-cat", "c-0")
    return database


class TestRoundtrip:
    def test_pixels_and_labels_survive(self, tmp_path):
        database = make_db()
        path = save_database(database, tmp_path / "snap.npz")
        restored = load_database(path)
        assert len(restored) == 2
        assert restored.name == "snap"
        assert restored.categories() == ("gray-cat", "rgb-cat")
        np.testing.assert_allclose(
            restored.record("g-0").image.pixels, database.record("g-0").image.pixels
        )

    def test_rgb_survives(self, tmp_path):
        database = make_db()
        restored = load_database(save_database(database, tmp_path / "s.npz"))
        np.testing.assert_allclose(
            restored.record("c-0").image.rgb, database.record("c-0").image.rgb
        )
        assert restored.record("g-0").image.rgb is None

    def test_feature_config_survives(self, tmp_path):
        database = make_db()
        restored = load_database(save_database(database, tmp_path / "s.npz"))
        assert restored.feature_config.resolution == 5
        assert restored.feature_config.region_family.name == "small9"

    def test_features_identical_after_roundtrip(self, tmp_path):
        database = make_db()
        before = database.instances_for("g-0")
        restored = load_database(save_database(database, tmp_path / "s.npz"))
        np.testing.assert_allclose(restored.instances_for("g-0"), before)

    def test_suffix_added(self, tmp_path):
        path = save_database(make_db(), tmp_path / "noext")
        assert path.suffix == ".npz"


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(DatabaseError):
            load_database(tmp_path / "missing.npz")

    def test_malformed_snapshot(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, stuff=np.zeros(3))
        with pytest.raises(DatabaseError):
            load_database(path)

    def test_garbage_file(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"this is not a zip archive")
        with pytest.raises(DatabaseError):
            load_database(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.npz"
        path.write_bytes(b"")
        with pytest.raises(DatabaseError):
            load_database(path)


class TestPackedRoundTrip:
    """Format v2: the cached PackedCorpus rides along instead of being dropped."""

    def test_cold_database_snapshots_without_packed(self, tmp_path):
        database = make_db()
        assert database.cached_packed is None
        restored = load_database(save_database(database, tmp_path / "cold.npz"))
        assert restored.cached_packed is None  # nothing to carry, nothing invented

    def test_warm_database_restores_packed_without_rebuild(self, tmp_path):
        database = make_db()
        packed_before = database.packed()  # build + cache the columnar view
        restored = load_database(save_database(database, tmp_path / "warm.npz"))
        packed_after = restored.cached_packed
        assert packed_after is not None, "packed corpus was silently dropped"
        assert packed_after.image_ids == packed_before.image_ids
        assert packed_after.categories == packed_before.categories
        np.testing.assert_array_equal(packed_after.instances, packed_before.instances)
        np.testing.assert_array_equal(packed_after.offsets, packed_before.offsets)

    def test_restored_packed_matches_a_fresh_build(self, tmp_path):
        database = make_db()
        database.packed()
        restored = load_database(save_database(database, tmp_path / "warm.npz"))
        adopted = restored.cached_packed
        fresh = make_db().packed()
        np.testing.assert_array_equal(adopted.instances, fresh.instances)

    def test_mutation_invalidates_restored_packed(self, tmp_path):
        database = make_db()
        database.packed()
        restored = load_database(save_database(database, tmp_path / "warm.npz"))
        rng = np.random.default_rng(9)
        restored.add_image(rng.uniform(0.1, 0.9, (24, 24)), "gray-cat", "g-1")
        assert restored.cached_packed is None
        assert len(restored.packed()) == 3

    def test_version_1_snapshots_still_load(self, tmp_path):
        """Pre-packed-era snapshots (format v1) stay readable."""
        import json

        database = make_db()
        path = save_database(database, tmp_path / "v1.npz")
        with np.load(path) as payload:
            manifest = json.loads(bytes(payload["manifest"]).decode("utf-8"))
            arrays = {key: payload[key] for key in payload.files if key != "manifest"}
        manifest["version"] = 1
        manifest.pop("packed", None)
        arrays["manifest"] = np.frombuffer(
            json.dumps(manifest).encode("utf-8"), dtype=np.uint8
        )
        legacy = tmp_path / "legacy.npz"
        np.savez_compressed(legacy, **arrays)
        restored = load_database(legacy)
        assert len(restored) == 2
        assert restored.cached_packed is None

    def test_unsupported_version_rejected(self, tmp_path):
        import json

        database = make_db()
        path = save_database(database, tmp_path / "fut.npz")
        with np.load(path) as payload:
            manifest = json.loads(bytes(payload["manifest"]).decode("utf-8"))
            arrays = {key: payload[key] for key in payload.files if key != "manifest"}
        manifest["version"] = 99
        arrays["manifest"] = np.frombuffer(
            json.dumps(manifest).encode("utf-8"), dtype=np.uint8
        )
        future = tmp_path / "future.npz"
        np.savez_compressed(future, **arrays)
        with pytest.raises(DatabaseError, match="version 99"):
            load_database(future)

    def test_corrupt_packed_arrays_rejected(self, tmp_path):
        """A packed view inconsistent with the images raises, never adopts."""
        import json

        database = make_db()
        database.packed()
        path = save_database(database, tmp_path / "warm.npz")
        with np.load(path) as payload:
            manifest = json.loads(bytes(payload["manifest"]).decode("utf-8"))
            arrays = {key: payload[key] for key in payload.files if key != "manifest"}
        # Truncate the instance matrix so the offsets no longer span it.
        arrays["packed_instances"] = arrays["packed_instances"][:-1]
        arrays["manifest"] = np.frombuffer(
            json.dumps(manifest).encode("utf-8"), dtype=np.uint8
        )
        corrupt = tmp_path / "corrupt.npz"
        np.savez_compressed(corrupt, **arrays)
        with pytest.raises(DatabaseError):
            load_database(corrupt)


class TestRankIndexRoundTrip:
    """Format v3: the packed view's shard index rides inside the snapshot."""

    def _warm_db_with_index(self):
        database = make_db()
        packed = database.packed()
        index = packed.shard_index()  # build + cache the envelopes
        return database, packed, index

    def test_index_survives_roundtrip(self, tmp_path):
        database, _, index_before = self._warm_db_with_index()
        restored = load_database(save_database(database, tmp_path / "v3.npz"))
        index_after = restored.cached_packed.cached_shard_index
        assert index_after is not None, "rank index was silently dropped"
        np.testing.assert_array_equal(index_after.lower, index_before.lower)
        np.testing.assert_array_equal(index_after.upper, index_before.upper)
        np.testing.assert_array_equal(
            index_after.boundaries, index_before.boundaries
        )
        assert index_after.group_size == index_before.group_size

    def test_cold_index_snapshots_without_index(self, tmp_path):
        database = make_db()
        database.packed()  # packed view, but no index built
        restored = load_database(save_database(database, tmp_path / "v3.npz"))
        assert restored.cached_packed is not None
        assert restored.cached_packed.cached_shard_index is None

    def test_version_2_snapshots_still_load(self, tmp_path):
        """Pre-rank-index snapshots (format v2) stay readable."""
        import json

        database, _, _ = self._warm_db_with_index()
        path = save_database(database, tmp_path / "v3.npz")
        with np.load(path) as payload:
            manifest = json.loads(bytes(payload["manifest"]).decode("utf-8"))
            arrays = {key: payload[key] for key in payload.files if key != "manifest"}
        manifest["version"] = 2
        index_info = manifest["packed"].pop("index")
        for key in (index_info["lower"], index_info["upper"],
                    index_info["boundaries"]):
            arrays.pop(key)
        arrays["manifest"] = np.frombuffer(
            json.dumps(manifest).encode("utf-8"), dtype=np.uint8
        )
        legacy = tmp_path / "v2.npz"
        np.savez_compressed(legacy, **arrays)
        restored = load_database(legacy)
        assert restored.cached_packed is not None
        assert restored.cached_packed.cached_shard_index is None

    def test_corrupt_index_payload_rejected(self, tmp_path):
        """An index manifest pointing at missing arrays raises, never adopts."""
        import json

        database, _, _ = self._warm_db_with_index()
        path = save_database(database, tmp_path / "v3.npz")
        with np.load(path) as payload:
            manifest = json.loads(bytes(payload["manifest"]).decode("utf-8"))
            arrays = {key: payload[key] for key in payload.files if key != "manifest"}
        arrays.pop(manifest["packed"]["index"]["lower"])
        arrays["manifest"] = np.frombuffer(
            json.dumps(manifest).encode("utf-8"), dtype=np.uint8
        )
        corrupt = tmp_path / "corrupt.npz"
        np.savez_compressed(corrupt, **arrays)
        with pytest.raises(DatabaseError, match="shard-index"):
            load_database(corrupt)

    def test_restored_index_ranks_identically(self, tmp_path):
        """Ranking over the restored packed view matches the original."""
        from repro.core.concept import LearnedConcept
        from repro.core.retrieval import Ranker

        database, packed_before, _ = self._warm_db_with_index()
        restored = load_database(save_database(database, tmp_path / "v3.npz"))
        packed_after = restored.cached_packed
        concept = LearnedConcept(
            t=packed_after.instances[0], w=np.ones(packed_after.n_dims), nll=0.0
        )
        fresh = Ranker().rank(concept, packed_before)
        again = Ranker().rank(concept, packed_after)
        assert [e.image_id for e in fresh] == [e.image_id for e in again]


class TestMalformedManifestTypes:
    def test_type_malformed_manifest_raises_database_error(self, tmp_path):
        """Wrong-typed manifest values surface as DatabaseError, not TypeError."""
        import json

        path = save_database(make_db(), tmp_path / "ok.npz")
        with np.load(path) as payload:
            manifest = json.loads(bytes(payload["manifest"]).decode("utf-8"))
            arrays = {key: payload[key] for key in payload.files if key != "manifest"}
        manifest["config"]["resolution"] = None
        arrays["manifest"] = np.frombuffer(
            json.dumps(manifest).encode("utf-8"), dtype=np.uint8
        )
        broken = tmp_path / "broken.npz"
        np.savez_compressed(broken, **arrays)
        with pytest.raises(DatabaseError, match="malformed"):
            load_database(broken)
