"""ServiceApp tests: dict-in/dict-out endpoints, served-vs-in-process
parity, feedback sessions over the wire, and error mapping."""

from __future__ import annotations

import pytest

from repro.api.query import Query
from repro.api.service import RetrievalService
from repro.errors import CodecError, DatabaseError, QueryError, SessionError
from repro.serve import codec
from repro.serve.app import ServiceApp, error_payload, handle_safely
from repro.serve.sessions import SessionStore

_PARAMS = {"scheme": "identical", "max_iterations": 25, "seed": 5}


@pytest.fixture()
def service(tiny_scene_db) -> RetrievalService:
    return RetrievalService(tiny_scene_db)


@pytest.fixture()
def app(service) -> ServiceApp:
    return ServiceApp(service)


def _query(tiny_scene_db, **kwargs) -> Query:
    ids = tiny_scene_db.ids_in_category("waterfall")
    negs = tiny_scene_db.ids_in_category("field")
    defaults = dict(
        positive_ids=ids[:2],
        negative_ids=negs[:2],
        learner="dd",
        params=dict(_PARAMS),
        top_k=5,
    )
    defaults.update(kwargs)
    return Query(**defaults)


class TestQueryEndpoints:
    def test_served_query_matches_in_process_ranking(self, app, tiny_scene_db):
        """The acceptance property: served == in-process on the same db."""
        query = _query(tiny_scene_db)
        reference = RetrievalService(tiny_scene_db).query(query)
        reply = app.query(codec.encode_query(query))
        served = codec.decode_query_result(reply)
        assert served.ranking.image_ids == reference.ranking.image_ids
        assert served.ranking.distances.tolist() == (
            reference.ranking.distances.tolist()
        )
        assert codec.wire_equal(served.query, query)

    def test_batch_query(self, app, tiny_scene_db):
        queries = [
            _query(tiny_scene_db),
            _query(tiny_scene_db, learner="random", params={"seed": 1}),
        ]
        reply = app.batch_query(
            codec.envelope(
                "batch_query",
                {"queries": [codec.encode_query(q) for q in queries], "workers": 2},
            )
        )
        body = codec.open_envelope(reply, "batch_query_result")
        results = [codec.decode_query_result(entry) for entry in body["results"]]
        assert len(results) == 2
        assert results[0].query.learner == "dd"
        assert results[1].query.learner == "random"

    def test_batch_query_needs_queries_list(self, app):
        with pytest.raises(CodecError, match="'queries' list"):
            app.batch_query(codec.envelope("batch_query", {}))

    def test_batch_query_clamps_wire_requested_workers(self, app, tiny_scene_db):
        """The request may ask for any worker count; the server caps it."""
        queries = [
            _query(tiny_scene_db, learner="random", params={"seed": s})
            for s in range(2)
        ]
        reply = app.batch_query(
            codec.envelope(
                "batch_query",
                {
                    "queries": [codec.encode_query(q) for q in queries],
                    "workers": 100000,
                },
            )
        )
        body = codec.open_envelope(reply, "batch_query_result")
        assert len(body["results"]) == 2

    def test_dispatch_routes_and_rejects(self, app, tiny_scene_db):
        reply = app.dispatch("query", codec.encode_query(_query(tiny_scene_db)))
        assert reply["kind"] == "query_result"
        with pytest.raises(QueryError, match="unknown endpoint"):
            app.dispatch("drop_tables", {})

    def test_query_rejects_version_skew(self, app, tiny_scene_db):
        payload = codec.encode_query(_query(tiny_scene_db))
        payload["version"] = 999
        with pytest.raises(CodecError, match="unsupported wire version"):
            app.query(payload)


class TestFeedbackEndpoint:
    def test_feedback_creates_session_and_ranks(self, app, tiny_scene_db):
        ids = tiny_scene_db.ids_in_category("waterfall")
        negs = tiny_scene_db.ids_in_category("field")
        reply = app.feedback(
            codec.envelope(
                "feedback",
                {
                    "learner": "dd",
                    "params": dict(_PARAMS),
                    "add_positive_ids": list(ids[:2]),
                    "add_negative_ids": list(negs[:1]),
                    "top_k": 5,
                },
            )
        )
        body = codec.open_envelope(reply, "feedback_result")
        assert body["session"]
        assert tuple(body["positive_ids"]) == ids[:2]
        ranking = codec.decode_ranking(body["ranking"])
        assert len(ranking) == 5
        assert codec.decode_concept(body["concept"]).n_dims > 0

    def test_feedback_round_two_reuses_session(self, app, tiny_scene_db):
        ids = tiny_scene_db.ids_in_category("waterfall")
        first = app.feedback(
            codec.envelope(
                "feedback",
                {
                    "params": dict(_PARAMS),
                    "add_positive_ids": list(ids[:2]),
                    "top_k": 5,
                },
            )
        )
        token = first["session"]
        bad = first["ranking"]["ranked"][0]["image_id"]
        second = app.feedback(
            codec.envelope(
                "feedback",
                {"session": token, "false_positive_ids": [bad], "top_k": 5},
            )
        )
        assert second["session"] == token
        assert bad in second["negative_ids"]
        assert bad not in [
            entry["image_id"] for entry in second["ranking"]["ranked"]
        ]

    def test_feedback_unknown_session(self, app):
        with pytest.raises(SessionError):
            app.feedback(
                codec.envelope("feedback", {"session": "bogus", "rank": False})
            )

    def test_failed_first_round_does_not_leak_a_session(self, app):
        """Create-on-first-use must clean up when the round is rejected."""
        with pytest.raises(DatabaseError):
            app.feedback(
                codec.envelope(
                    "feedback",
                    {"add_positive_ids": ["no-such-image"], "rank": False},
                )
            )
        assert len(app.sessions) == 0


class TestRankEndpoint:
    def test_rank_by_session(self, app, tiny_scene_db):
        ids = tiny_scene_db.ids_in_category("waterfall")
        created = app.feedback(
            codec.envelope(
                "feedback",
                {"params": dict(_PARAMS), "add_positive_ids": list(ids[:2]),
                 "top_k": 5},
            )
        )
        reply = app.rank(
            codec.envelope(
                "rank", {"session": created["session"], "top_k": 3}
            )
        )
        ranking = codec.decode_ranking(
            codec.open_envelope(reply, "rank_result")["ranking"]
        )
        assert len(ranking) == 3

    def test_rank_by_wire_concept(self, app, service, tiny_scene_db):
        query = _query(tiny_scene_db)
        concept = service.query(query).concept
        reply = app.rank(
            codec.envelope(
                "rank",
                {
                    "concept": codec.encode_concept(concept),
                    "exclude": list(query.example_ids),
                    "top_k": 5,
                },
            )
        )
        ranking = codec.decode_ranking(
            codec.open_envelope(reply, "rank_result")["ranking"]
        )
        # Ranking a shipped concept reproduces the query's own ranking.
        reference = service.query(query).ranking
        assert ranking.image_ids == reference.image_ids

    def test_rank_needs_session_or_concept(self, app):
        with pytest.raises(CodecError, match="'session' token or a 'concept'"):
            app.rank(codec.envelope("rank", {"top_k": 3}))


class TestIntrospection:
    def test_health(self, app, tiny_scene_db):
        body = codec.open_envelope(app.health(), "health")
        assert body["status"] == "ok"
        assert body["n_images"] == len(tiny_scene_db)
        assert body["wire_version"] == codec.WIRE_VERSION
        assert "dd" in body["learners"]

    def test_stats_reports_service_cache_and_sessions(self, app, tiny_scene_db):
        app.query(codec.encode_query(_query(tiny_scene_db)))
        body = codec.open_envelope(app.stats(), "stats")
        assert body["service"]["n_queries"] == 1
        assert body["service"]["max_history"] == app.service.max_history
        assert body["sessions"]["active"] == 0
        assert body["service"]["cache"]["misses"] >= 1

    def test_app_keeps_a_provided_empty_session_store(self, service):
        """An empty store is __len__-falsy but its configuration must win."""
        store = SessionStore(service, ttl_seconds=60.0, max_sessions=4)
        app = ServiceApp(service, sessions=store)
        assert app.sessions is store
        assert app.sessions.stats()["max_sessions"] == 4

    def test_app_rejects_foreign_session_store(self, service, tiny_scene_db):
        other = RetrievalService(tiny_scene_db)
        with pytest.raises(SessionError, match="must wrap the served service"):
            ServiceApp(service, sessions=SessionStore(other))


class TestErrorMapping:
    def test_handle_safely_statuses(self, app):
        status, payload = handle_safely(app, "health", None)
        assert status == 200 and payload["kind"] == "health"
        status, payload = handle_safely(
            app, "feedback",
            codec.envelope("feedback", {"session": "bogus", "rank": False}),
        )
        assert status == 404 and payload["error"] == "SessionError"
        status, payload = handle_safely(app, "query", {"kind": "query"})
        assert status == 400 and payload["kind"] == "error"
        status, payload = handle_safely(app, "nope", None)
        assert status == 400 and payload["error"] == "QueryError"

    def test_error_payload_shape(self):
        payload = error_payload(CodecError("boom"))
        assert payload == {
            "kind": "error",
            "version": codec.WIRE_VERSION,
            "error": "CodecError",
            "message": "boom",
        }
