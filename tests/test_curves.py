"""Unit tests for recall and precision-recall curves."""

import numpy as np
import pytest

from repro.errors import EvaluationError
from repro.eval.curves import PrecisionRecallCurve, RecallCurve, curves_from_relevance

GOOD = np.array([True] * 6 + [False, True] * 3 + [False] * 8)
RANDOMISH = np.array([True, False, False, True, False] * 4)


class TestRecallCurve:
    def test_points_shape(self):
        curve = RecallCurve(GOOD)
        xs, ys = curve.points
        assert xs.size == ys.size == GOOD.size
        assert xs[0] == 1

    def test_monotone(self):
        _, ys = RecallCurve(GOOD).points
        assert np.all(np.diff(ys) >= 0)

    def test_recall_after(self):
        curve = RecallCurve(GOOD)
        assert curve.recall_after(6) == pytest.approx(6 / 9)
        with pytest.raises(EvaluationError):
            curve.recall_after(0)

    def test_area_perfect_vs_worst(self):
        perfect = RecallCurve(np.array([True] * 3 + [False] * 7))
        worst = RecallCurve(np.array([False] * 7 + [True] * 3))
        assert perfect.area() > worst.area()

    def test_convexity_gain_sign(self):
        perfect = RecallCurve(np.array([True] * 3 + [False] * 7))
        worst = RecallCurve(np.array([False] * 7 + [True] * 3))
        assert perfect.convexity_gain() > 0
        assert worst.convexity_gain() < 0

    def test_external_n_relevant(self):
        curve = RecallCurve(np.array([True, True]), n_relevant=8)
        assert curve.n_relevant == 8
        assert curve.recall_after(2) == pytest.approx(0.25)

    def test_n_retrieved(self):
        assert RecallCurve(GOOD).n_retrieved == GOOD.size


class TestPrecisionRecallCurve:
    def test_points_parallel(self):
        recalls, precisions = PrecisionRecallCurve(GOOD).points
        assert recalls.size == precisions.size == GOOD.size

    def test_precision_at_recall(self):
        curve = PrecisionRecallCurve(np.array([True] * 5 + [False] * 5))
        assert curve.precision_at_recall(0.5) == pytest.approx(1.0)
        assert curve.precision_at_recall(1.0) == pytest.approx(1.0)

    def test_precision_at_unreachable_recall(self):
        curve = PrecisionRecallCurve(np.array([True, False]), n_relevant=5)
        assert curve.precision_at_recall(0.9) == pytest.approx(0.0)

    def test_invalid_recall_rejected(self):
        with pytest.raises(EvaluationError):
            PrecisionRecallCurve(GOOD).precision_at_recall(1.5)

    def test_sampled_default_grid(self):
        grid, values = PrecisionRecallCurve(GOOD).sampled()
        assert grid.size == 20
        assert values.size == 20
        assert np.all((values >= 0) & (values <= 1))

    def test_sampled_custom_grid(self):
        grid, values = PrecisionRecallCurve(GOOD).sampled(np.array([0.1, 0.9]))
        assert grid.size == 2

    def test_average_precision_consistent_with_metric(self):
        from repro.eval.metrics import average_precision

        curve = PrecisionRecallCurve(GOOD)
        assert curve.average_precision() == pytest.approx(average_precision(GOOD))

    def test_band_precision_consistent_with_metric(self):
        from repro.eval.metrics import precision_in_recall_band

        curve = PrecisionRecallCurve(GOOD)
        assert curve.band_precision() == pytest.approx(
            precision_in_recall_band(GOOD, 0.3, 0.4)
        )

    def test_summary_fields(self):
        summary = PrecisionRecallCurve(GOOD).summary()
        assert 0.0 <= summary.average_precision <= 1.0
        assert 0.0 <= summary.band_precision <= 1.0
        assert 0.0 <= summary.recall_at_quarter <= 1.0
        assert summary.final_recall == pytest.approx(1.0)

    def test_misleading_curve_shape(self):
        # The Figure 4-7 pattern: first image wrong, then a run of correct
        # ones. Precision at low recall is penalised, then recovers.
        relevance = np.array([False] + [True] * 7 + [False] * 12)
        curve = PrecisionRecallCurve(relevance)
        recalls, precisions = curve.points
        assert precisions[0] == pytest.approx(0.0)
        assert precisions[7] == pytest.approx(7 / 8)


class TestCurvesFromRelevance:
    def test_returns_both(self):
        recall_curve, pr_curve = curves_from_relevance(GOOD)
        assert isinstance(recall_curve, RecallCurve)
        assert isinstance(pr_curve, PrecisionRecallCurve)
