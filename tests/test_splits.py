"""Unit tests for database splits (Section 4.1 protocol)."""

import numpy as np
import pytest

from repro.database.splits import DatabaseSplit, split_database, split_ids
from repro.database.store import ImageDatabase
from repro.errors import SplitError


def make_db(per_category: int = 10) -> ImageDatabase:
    database = ImageDatabase()
    rng = np.random.default_rng(0)
    for category in ("a", "b", "c"):
        for index in range(per_category):
            database.add_image(
                rng.uniform(0.1, 0.9, size=(16, 16)), category, f"{category}-{index}"
            )
    return database


class TestDatabaseSplit:
    def test_disjointness_enforced(self):
        with pytest.raises(SplitError):
            DatabaseSplit(potential_ids=("a", "b"), test_ids=("b", "c"))

    def test_sizes(self):
        split = DatabaseSplit(potential_ids=("a",), test_ids=("b", "c"))
        assert split.n_potential == 1
        assert split.n_test == 2


class TestSplitDatabase:
    def test_default_fraction(self):
        split = split_database(make_db(10), training_fraction=0.2, seed=0)
        assert split.n_potential == 6  # 2 per category
        assert split.n_test == 24

    def test_stratified(self):
        split = split_database(make_db(10), training_fraction=0.3, seed=1)
        for category in ("a", "b", "c"):
            count = sum(1 for i in split.potential_ids if i.startswith(category))
            assert count == 3

    def test_covers_database(self):
        database = make_db(10)
        split = split_database(database, seed=2)
        assert set(split.potential_ids) | set(split.test_ids) == set(database.image_ids)

    def test_deterministic(self):
        database = make_db(10)
        assert split_database(database, seed=7) == split_database(database, seed=7)

    def test_different_seeds_differ(self):
        database = make_db(10)
        assert split_database(database, seed=1) != split_database(database, seed=2)

    def test_min_training_floor(self):
        split = split_database(
            make_db(5), training_fraction=0.05, seed=0, min_training_per_category=1
        )
        for category in ("a", "b", "c"):
            assert any(i.startswith(category) for i in split.potential_ids)

    def test_empty_database_rejected(self):
        with pytest.raises(SplitError):
            split_database(ImageDatabase())

    def test_invalid_fraction_rejected(self):
        with pytest.raises(SplitError):
            split_database(make_db(), training_fraction=0.0)
        with pytest.raises(SplitError):
            split_database(make_db(), training_fraction=1.0)

    def test_tiny_category_rejected(self):
        database = ImageDatabase()
        database.add_image(np.random.rand(16, 16) * 0.8, "solo", "solo-0")
        with pytest.raises(SplitError):
            split_database(database, training_fraction=0.5)


class TestSplitIds:
    def test_basic(self):
        ids = [f"x-{i}" for i in range(10)] + [f"y-{i}" for i in range(10)]
        cats = ["x"] * 10 + ["y"] * 10
        split = split_ids(ids, cats, training_fraction=0.2, seed=0)
        assert split.n_potential == 4
        assert split.n_test == 16

    def test_length_mismatch_rejected(self):
        with pytest.raises(SplitError):
            split_ids(["a"], ["x", "y"])

    def test_empty_rejected(self):
        with pytest.raises(SplitError):
            split_ids([], [])

    def test_single_member_category_rejected(self):
        with pytest.raises(SplitError):
            split_ids(["a", "b"], ["x", "y"], training_fraction=0.5)
