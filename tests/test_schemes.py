"""Unit tests for the four weight-control schemes on planted MIL problems."""

import numpy as np
import pytest

from repro.core.objective import DiverseDensityObjective
from repro.core.projection import is_feasible
from repro.core.schemes import (
    AlphaHackScheme,
    IdenticalWeightsScheme,
    InequalityScheme,
    OriginalDDScheme,
    make_scheme,
)
from repro.errors import TrainingError
from tests.conftest import make_planted_bag_set


@pytest.fixture(scope="module")
def planted_problem():
    bag_set, concept = make_planted_bag_set(n_dims=4, seed=7)
    return DiverseDensityObjective(bag_set), bag_set, concept


def best_over_starts(scheme, objective, bag_set, max_starts=12):
    best = None
    count = 0
    for bag in bag_set.positive_bags:
        for instance in bag.instances:
            result = scheme.optimize(objective, instance)
            if best is None or result.value < best.value:
                best = result
            count += 1
            if count >= max_starts:
                return best
    return best


class TestOriginalScheme:
    def test_recovers_planted_concept(self, planted_problem):
        objective, bag_set, concept = planted_problem
        scheme = OriginalDDScheme(max_iterations=200)
        best = best_over_starts(scheme, objective, bag_set)
        assert np.linalg.norm(best.t - concept) < 0.5

    def test_weights_nonnegative(self, planted_problem):
        objective, bag_set, _ = planted_problem
        scheme = OriginalDDScheme(max_iterations=100)
        result = scheme.optimize(objective, bag_set.positive_bags[0].instances[0])
        assert np.all(result.w >= 0)

    def test_improves_over_start(self, planted_problem):
        objective, bag_set, _ = planted_problem
        start = bag_set.positive_bags[0].instances[0]
        start_value = objective.value(start, np.ones(objective.n_dims))
        result = OriginalDDScheme(max_iterations=100).optimize(objective, start)
        assert result.value <= start_value + 1e-9

    def test_armijo_backend_works(self, planted_problem):
        objective, bag_set, _ = planted_problem
        scheme = OriginalDDScheme(max_iterations=100, backend="armijo")
        result = scheme.optimize(objective, bag_set.positive_bags[0].instances[0])
        assert np.isfinite(result.value)


class TestIdenticalScheme:
    def test_weights_all_one(self, planted_problem):
        objective, bag_set, _ = planted_problem
        result = IdenticalWeightsScheme(max_iterations=100).optimize(
            objective, bag_set.positive_bags[0].instances[0]
        )
        np.testing.assert_allclose(result.w, 1.0)

    def test_recovers_planted_concept(self, planted_problem):
        objective, bag_set, concept = planted_problem
        best = best_over_starts(
            IdenticalWeightsScheme(max_iterations=200), objective, bag_set
        )
        assert np.linalg.norm(best.t - concept) < 0.5


class TestAlphaHackScheme:
    def test_moves_weights_less_than_original(self, planted_problem):
        objective, bag_set, _ = planted_problem
        start = bag_set.positive_bags[0].instances[0]
        original = OriginalDDScheme(max_iterations=60, backend="armijo").optimize(
            objective, start
        )
        damped = AlphaHackScheme(alpha=200.0, max_iterations=60).optimize(
            objective, start
        )
        move_original = float(np.abs(original.w - 1.0).sum())
        move_damped = float(np.abs(damped.w - 1.0).sum())
        assert move_damped <= move_original + 1e-9

    def test_invalid_alpha_rejected(self):
        with pytest.raises(TrainingError):
            AlphaHackScheme(alpha=0.0)

    def test_describe_includes_alpha(self):
        assert "50" in AlphaHackScheme(alpha=50.0).describe()


class TestInequalityScheme:
    @pytest.mark.parametrize("backend", ["projected", "slsqp"])
    def test_result_feasible(self, planted_problem, backend):
        objective, bag_set, _ = planted_problem
        scheme = InequalityScheme(beta=0.5, max_iterations=80, backend=backend)
        result = scheme.optimize(objective, bag_set.positive_bags[0].instances[0])
        assert is_feasible(result.w, 0.5, tolerance=1e-5)

    def test_beta_one_equals_identical_weights(self, planted_problem):
        objective, bag_set, _ = planted_problem
        result = InequalityScheme(beta=1.0, max_iterations=80).optimize(
            objective, bag_set.positive_bags[0].instances[0]
        )
        np.testing.assert_allclose(result.w, 1.0, atol=1e-6)

    def test_recovers_planted_concept(self, planted_problem):
        objective, bag_set, concept = planted_problem
        best = best_over_starts(
            InequalityScheme(beta=0.5, max_iterations=150), objective, bag_set
        )
        assert np.linalg.norm(best.t - concept) < 0.6

    def test_invalid_beta_rejected(self):
        with pytest.raises(TrainingError):
            InequalityScheme(beta=2.0)

    def test_invalid_backend_rejected(self):
        with pytest.raises(TrainingError):
            InequalityScheme(beta=0.5, backend="cfsqp")

    def test_describe_includes_beta(self):
        assert "0.25" in InequalityScheme(beta=0.25).describe()


class TestFactory:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("original", OriginalDDScheme),
            ("identical", IdenticalWeightsScheme),
            ("alpha_hack", AlphaHackScheme),
            ("inequality", InequalityScheme),
        ],
    )
    def test_builds_each_scheme(self, name, cls):
        assert isinstance(make_scheme(name), cls)

    def test_unknown_scheme_rejected(self):
        with pytest.raises(TrainingError):
            make_scheme("magic")

    def test_parameters_forwarded(self):
        scheme = make_scheme("inequality", beta=0.25)
        assert scheme.beta == pytest.approx(0.25)
        scheme = make_scheme("alpha_hack", alpha=10.0)
        assert scheme.alpha == pytest.approx(10.0)

    def test_w0_validation(self, planted_problem):
        objective, bag_set, _ = planted_problem
        scheme = make_scheme("original")
        with pytest.raises(TrainingError):
            scheme.optimize(
                objective, bag_set.positive_bags[0].instances[0], w0=np.ones(3)
            )
        with pytest.raises(TrainingError):
            scheme.optimize(
                objective,
                bag_set.positive_bags[0].instances[0],
                w0=-np.ones(objective.n_dims),
            )
