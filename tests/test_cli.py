"""Unit tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.database.persistence import load_database, save_database
from repro.database.store import ImageDatabase
from repro.imaging.features import FeatureConfig
from repro.imaging.regions import region_family


@pytest.fixture()
def snapshot(tmp_path):
    """A small pre-built scene snapshot on disk."""
    from repro.datasets.loader import quick_database

    config = FeatureConfig(resolution=6, region_family=region_family("small9"))
    database = quick_database(
        "scenes", images_per_category=6, size=(48, 48), seed=2, feature_config=config
    )
    return str(save_database(database, tmp_path / "scenes.npz"))


class TestBuildDb:
    def test_builds_and_saves(self, tmp_path, capsys):
        out = tmp_path / "db.npz"
        code = main(
            [
                "build-db", "--kind", "objects", "--per-category", "2",
                "--size", "48", "--seed", "1", "--out", str(out),
            ]
        )
        assert code == 0
        assert out.exists()
        database = load_database(out)
        assert len(database) == 38
        assert "wrote" in capsys.readouterr().out


class TestInfo:
    def test_prints_categories(self, snapshot, capsys):
        assert main(["info", "--db", snapshot]) == 0
        output = capsys.readouterr().out
        assert "waterfall" in output
        assert "features:" in output

    def test_missing_db_errors(self, tmp_path, capsys):
        code = main(["info", "--db", str(tmp_path / "nope.npz")])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestQuery:
    def test_ranks_and_reports(self, snapshot, capsys):
        code = main(
            [
                "query", "--db", snapshot, "--category", "sunset",
                "--scheme", "identical", "--positives", "2", "--negatives", "2",
                "--top", "5", "--seed", "3",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "top 5 matches" in output
        assert "precision@5" in output

    def test_unknown_category_errors(self, snapshot, capsys):
        code = main(
            ["query", "--db", snapshot, "--category", "spaceships",
             "--positives", "2", "--negatives", "2"]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_emdd_learner(self, snapshot, capsys):
        code = main(
            [
                "query", "--db", snapshot, "--category", "sunset",
                "--learner", "emdd", "--scheme", "identical",
                "--positives", "2", "--negatives", "2",
                "--top", "5", "--seed", "3",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "emdd learner" in output
        assert "precision@5" in output

    def test_unknown_learner_errors(self, snapshot, capsys):
        code = main(
            ["query", "--db", snapshot, "--category", "sunset",
             "--learner", "frobnicator", "--positives", "2", "--negatives", "2"]
        )
        assert code == 2
        assert "unknown learner" in capsys.readouterr().err


class TestBatchQuery:
    def test_multi_category_batch(self, snapshot, capsys):
        code = main(
            [
                "batch-query", "--db", snapshot,
                "--categories", "sunset,waterfall",
                "--scheme", "identical", "--positives", "2", "--negatives", "2",
                "--top", "5", "--workers", "2", "--seed", "3",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "batch of 2 queries" in output
        assert "sunset" in output and "waterfall" in output
        assert "throughput" in output

    def test_empty_categories_errors(self, snapshot, capsys):
        code = main(
            ["batch-query", "--db", snapshot, "--categories", " , "]
        )
        assert code == 2
        assert "no category names" in capsys.readouterr().err


class TestExperiment:
    def test_full_protocol(self, snapshot, capsys):
        code = main(
            [
                "experiment", "--db", snapshot, "--category", "sunset",
                "--scheme", "identical", "--rounds", "2",
                "--positives", "2", "--negatives", "2",
                "--training-fraction", "0.4", "--seed", "5",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "test AP" in output
        assert "round" in output


class TestVersionFlag:
    def test_version_printed(self, capsys):
        from repro.version import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert f"repro {__version__}" in capsys.readouterr().out


class TestTopK:
    def test_top_k_flag_truncates(self, snapshot, capsys):
        code = main(
            [
                "query", "--db", snapshot, "--category", "sunset",
                "--scheme", "identical", "--positives", "2", "--negatives", "2",
                "--top-k", "3", "--seed", "3",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "top 3 matches" in output
        assert "kept top 3" in output
        assert "precision@3" in output

    def test_legacy_top_alias_still_works(self, snapshot, capsys):
        code = main(
            [
                "query", "--db", snapshot, "--category", "sunset",
                "--scheme", "identical", "--positives", "2", "--negatives", "2",
                "--top", "3", "--seed", "3",
            ]
        )
        assert code == 0
        assert "top 3 matches" in capsys.readouterr().out

    def test_batch_query_top_k(self, snapshot, capsys):
        code = main(
            [
                "batch-query", "--db", snapshot, "--categories", "sunset",
                "--scheme", "identical", "--positives", "2", "--negatives", "2",
                "--top-k", "3", "--seed", "3",
            ]
        )
        assert code == 0
        assert "p@3" in capsys.readouterr().out


class TestTrainingFlags:
    def test_query_verbose_reports_training_and_cache(self, snapshot, capsys):
        code = main(
            [
                "query", "--db", snapshot, "--category", "waterfall",
                "--scheme", "identical", "--positives", "2", "--negatives", "2",
                "--seed", "3", "--verbose",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "wall time" in output
        assert "pruned" in output
        assert "concept cache:" in output

    def test_query_sequential_engine(self, snapshot, capsys):
        code = main(
            [
                "query", "--db", snapshot, "--category", "waterfall",
                "--scheme", "identical", "--positives", "2", "--negatives", "2",
                "--seed", "3", "--train-engine", "sequential", "--verbose",
            ]
        )
        assert code == 0
        assert "engine sequential" in capsys.readouterr().out

    def test_query_prune_margin(self, snapshot, capsys):
        code = main(
            [
                "query", "--db", snapshot, "--category", "waterfall",
                "--scheme", "identical", "--positives", "2", "--negatives", "2",
                "--seed", "3", "--restart-prune-margin", "0.5", "--verbose",
            ]
        )
        assert code == 0
        assert "pruned" in capsys.readouterr().out

    def test_unknown_engine_rejected(self, snapshot):
        with pytest.raises(SystemExit):
            main(
                [
                    "query", "--db", snapshot, "--category", "waterfall",
                    "--train-engine", "warp-drive",
                ]
            )

    def test_batch_query_verbose_cache_stats(self, snapshot, capsys):
        code = main(
            [
                "batch-query", "--db", snapshot,
                "--categories", "sunset,sunset",
                "--scheme", "identical", "--positives", "2", "--negatives", "2",
                "--seed", "3", "--verbose",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "concept cache:" in output
        assert "restarts pruned" in output

    def test_experiment_verbose(self, snapshot, capsys):
        code = main(
            [
                "experiment", "--db", snapshot, "--category", "waterfall",
                "--scheme", "identical", "--rounds", "2",
                "--positives", "2", "--negatives", "2", "--verbose",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "final round:" in output
        assert "wall time" in output


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
