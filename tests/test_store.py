"""Unit tests for the image database store."""

import numpy as np
import pytest

from repro.database.store import ImageDatabase
from repro.errors import DatabaseError
from repro.imaging.features import FeatureConfig
from repro.imaging.image import GrayImage
from repro.imaging.regions import region_family


def textured(seed: int, size: int = 48) -> np.ndarray:
    return np.random.default_rng(seed).uniform(0.1, 0.9, size=(size, size))


@pytest.fixture()
def db() -> ImageDatabase:
    config = FeatureConfig(resolution=5, region_family=region_family("small9"))
    database = ImageDatabase(feature_config=config, name="test-db")
    for index in range(4):
        database.add_image(textured(index), "alpha", image_id=f"alpha-{index}")
    for index in range(3):
        database.add_image(textured(10 + index), "beta", image_id=f"beta-{index}")
    return database


class TestMutation:
    def test_add_and_len(self, db):
        assert len(db) == 7

    def test_auto_ids(self):
        database = ImageDatabase()
        first = database.add_image(textured(0), "x")
        second = database.add_image(textured(1), "x")
        assert first != second
        assert first.startswith("img-")

    def test_duplicate_id_rejected(self, db):
        with pytest.raises(DatabaseError):
            db.add_image(textured(99), "alpha", image_id="alpha-0")

    def test_empty_category_rejected(self, db):
        with pytest.raises(DatabaseError):
            db.add_image(textured(99), "")

    def test_add_gray_image_object(self, db):
        image = GrayImage.from_array(textured(50))
        image_id = db.add_image(image, "gamma", image_id="g-0")
        assert db.category_of(image_id) == "gamma"

    def test_add_rgb_keeps_color(self, db):
        rgb = np.random.default_rng(60).uniform(size=(48, 48, 3))
        image_id = db.add_image(rgb, "gamma", image_id="g-1")
        assert db.record(image_id).image.rgb is not None

    def test_add_images_bulk(self):
        database = ImageDatabase()
        ids = database.add_images(
            [(textured(i), "bulk") for i in range(3)], id_prefix="blk-"
        )
        assert ids == ["blk-000000", "blk-000001", "blk-000002"]


class TestLookup:
    def test_record(self, db):
        record = db.record("alpha-1")
        assert record.category == "alpha"
        assert record.image_id == "alpha-1"

    def test_unknown_record(self, db):
        with pytest.raises(DatabaseError):
            db.record("missing")

    def test_contains(self, db):
        assert "alpha-0" in db
        assert "zzz" not in db

    def test_categories_sorted(self, db):
        assert db.categories() == ("alpha", "beta")

    def test_ids_in_category(self, db):
        assert db.ids_in_category("beta") == ("beta-0", "beta-1", "beta-2")

    def test_unknown_category(self, db):
        with pytest.raises(DatabaseError):
            db.ids_in_category("gamma")

    def test_category_sizes(self, db):
        assert db.category_sizes() == {"alpha": 4, "beta": 3}

    def test_iteration(self, db):
        assert len(list(db)) == 7

    def test_repr(self, db):
        assert "7 images" in repr(db)


class TestCorpusViews:
    def test_instances_shape(self, db):
        instances = db.instances_for("alpha-0")
        assert instances.shape == (18, 25)  # small9 family with mirrors, h=5

    def test_instances_cached(self, db):
        first = db.instances_for("alpha-0")
        second = db.instances_for("alpha-0")
        assert first is second

    def test_category_of(self, db):
        assert db.category_of("beta-2") == "beta"

    def test_bag_for(self, db):
        bag = db.bag_for("alpha-2", label=True)
        assert bag.label is True
        assert bag.bag_id == "alpha-2"
        assert bag.n_instances == 18

    def test_retrieval_candidates_all(self, db):
        candidates = db.retrieval_candidates()
        assert len(candidates) == 7

    def test_retrieval_candidates_subset(self, db):
        candidates = db.retrieval_candidates(["beta-0", "alpha-3"])
        assert [c.image_id for c in candidates] == ["beta-0", "alpha-3"]
        assert candidates[0].category == "beta"

    def test_packed_full_view_cached(self, db):
        packed = db.packed()
        assert packed.n_bags == 7
        assert packed.image_ids == db.image_ids
        assert db.packed() is packed  # cached
        np.testing.assert_array_equal(
            packed.bag_instances("alpha-0"), db.instances_for("alpha-0")
        )

    def test_packed_subset_uses_cache(self, db):
        full = db.packed()
        subset = db.packed(["beta-0", "alpha-3"])
        assert subset.image_ids == ("beta-0", "alpha-3")
        assert subset.n_dims == full.n_dims

    def test_packed_unknown_id(self, db):
        db.packed()
        with pytest.raises(DatabaseError, match="unknown image id"):
            db.packed(["nope"])

    def test_packed_invalidated_by_add_image(self, db):
        before = db.packed()
        db.add_image(textured(77), "alpha", "alpha-new")
        after = db.packed()
        assert after is not before
        assert "alpha-new" in after.image_ids

    def test_precompute_features(self, db):
        assert db.precompute_features() == 7

    def test_reconfigure_invalidates_cache(self, db):
        before = db.instances_for("alpha-0")
        db.reconfigure(
            FeatureConfig(resolution=4, region_family=region_family("small9"))
        )
        after = db.instances_for("alpha-0")
        assert after.shape[1] == 16
        assert before.shape[1] == 25
