"""Property-based tests of the constraint-set projection (Section 3.6.3)."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.projection import is_feasible, project_weights

_BETAS = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


def weight_vectors():
    return st.integers(min_value=1, max_value=60).flatmap(
        lambda n: hnp.arrays(
            dtype=np.float64,
            shape=n,
            elements=st.floats(min_value=-10, max_value=10, allow_nan=False),
        )
    )


@given(weight_vectors(), _BETAS)
@settings(max_examples=200, deadline=None)
def test_projection_is_feasible(y, beta):
    assert is_feasible(project_weights(y, beta), beta, tolerance=1e-6)


@given(weight_vectors(), _BETAS)
@settings(max_examples=200, deadline=None)
def test_projection_idempotent(y, beta):
    once = project_weights(y, beta)
    twice = project_weights(once, beta)
    np.testing.assert_allclose(twice, once, atol=1e-7)


@given(weight_vectors(), _BETAS)
@settings(max_examples=200, deadline=None)
def test_feasible_points_fixed(y, beta):
    clipped = np.clip(y, 0.0, 1.0)
    if clipped.sum() >= beta * y.size:
        np.testing.assert_allclose(project_weights(clipped, beta), clipped, atol=1e-9)


@given(weight_vectors(), _BETAS, st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=150, deadline=None)
def test_projection_no_farther_than_any_sample(y, beta, seed):
    """The projection is at least as close to y as random feasible points."""
    projected = project_weights(y, beta)
    rng = np.random.default_rng(seed)
    proj_dist = float(((projected - y) ** 2).sum())
    for _ in range(5):
        candidate = rng.uniform(0.0, 1.0, size=y.size)
        candidate = project_weights(candidate, beta)  # ensure feasibility
        cand_dist = float(((candidate - y) ** 2).sum())
        assert proj_dist <= cand_dist + 1e-6


@given(weight_vectors())
@settings(max_examples=100, deadline=None)
def test_beta_zero_is_plain_clip(y):
    np.testing.assert_allclose(project_weights(y, 0.0), np.clip(y, 0, 1), atol=1e-12)


@given(weight_vectors())
@settings(max_examples=100, deadline=None)
def test_beta_one_is_all_ones(y):
    np.testing.assert_allclose(project_weights(y, 1.0), 1.0, atol=1e-6)


@given(weight_vectors(), _BETAS)
@settings(max_examples=150, deadline=None)
def test_projection_monotone_in_input(y, beta):
    """Raising one coordinate of y never lowers that coordinate's projection."""
    projected = project_weights(y, beta)
    bumped = y.copy()
    bumped[0] += 0.5
    projected_bumped = project_weights(bumped, beta)
    assert projected_bumped[0] >= projected[0] - 1e-7
