"""Unit tests for the paired bootstrap significance machinery."""

import numpy as np
import pytest

from repro.core.retrieval import RankedImage, RetrievalResult
from repro.errors import EvaluationError
from repro.eval.significance import (
    PairedComparison,
    paired_bootstrap,
    seed_resampled_aps,
)


def ranking_from_order(ids_in_order, relevant_ids) -> RetrievalResult:
    return RetrievalResult(
        [
            RankedImage(
                rank=position,
                image_id=image_id,
                category="target" if image_id in relevant_ids else "other",
                distance=float(position),
            )
            for position, image_id in enumerate(ids_in_order)
        ]
    )


@pytest.fixture()
def corpus_ids():
    return [f"img-{i:02d}" for i in range(30)]


@pytest.fixture()
def relevant(corpus_ids):
    return set(corpus_ids[:10])


class TestPairedBootstrap:
    def test_identical_rankings_not_significant(self, corpus_ids, relevant):
        good = ranking_from_order(corpus_ids, relevant)
        result = paired_bootstrap(good, good, "target", n_replicates=300, seed=0)
        assert result.mean_difference == pytest.approx(0.0, abs=1e-12)
        assert not result.significant
        assert "very close" in result.verdict()

    def test_clear_winner_is_significant(self, corpus_ids, relevant):
        perfect = ranking_from_order(corpus_ids, relevant)  # relevant first
        terrible = ranking_from_order(corpus_ids[::-1], relevant)  # relevant last
        result = paired_bootstrap(perfect, terrible, "target", n_replicates=400, seed=1)
        assert result.mean_difference > 0.3
        assert result.significant
        assert "first better" in result.verdict()

    def test_direction_symmetry(self, corpus_ids, relevant):
        perfect = ranking_from_order(corpus_ids, relevant)
        terrible = ranking_from_order(corpus_ids[::-1], relevant)
        forward = paired_bootstrap(perfect, terrible, "target", 300, seed=2)
        backward = paired_bootstrap(terrible, perfect, "target", 300, seed=2)
        assert forward.mean_difference == pytest.approx(
            -backward.mean_difference, abs=0.05
        )

    def test_p_value_in_unit_interval(self, corpus_ids, relevant):
        a = ranking_from_order(corpus_ids, relevant)
        shuffled = list(corpus_ids)
        np.random.default_rng(3).shuffle(shuffled)
        b = ranking_from_order(shuffled, relevant)
        result = paired_bootstrap(a, b, "target", n_replicates=200, seed=3)
        assert 0.0 <= result.p_value <= 1.0

    def test_mismatched_image_sets_rejected(self, corpus_ids, relevant):
        a = ranking_from_order(corpus_ids, relevant)
        b = ranking_from_order(corpus_ids[:-1], relevant)
        with pytest.raises(EvaluationError):
            paired_bootstrap(a, b, "target")

    def test_no_relevant_images_rejected(self, corpus_ids):
        a = ranking_from_order(corpus_ids, set())
        with pytest.raises(EvaluationError):
            paired_bootstrap(a, a, "target")

    def test_too_few_replicates_rejected(self, corpus_ids, relevant):
        a = ranking_from_order(corpus_ids, relevant)
        with pytest.raises(EvaluationError):
            paired_bootstrap(a, a, "target", n_replicates=10)

    def test_deterministic_given_seed(self, corpus_ids, relevant):
        a = ranking_from_order(corpus_ids, relevant)
        b = ranking_from_order(corpus_ids[::-1], relevant)
        first = paired_bootstrap(a, b, "target", 200, seed=9)
        second = paired_bootstrap(a, b, "target", 200, seed=9)
        assert first == second


class TestSeedResampling:
    def test_collects_aps(self):
        class FakeResult:
            def __init__(self, ap):
                self.average_precision = ap

        values = seed_resampled_aps(lambda seed: FakeResult(seed / 10), seeds=(1, 2, 3))
        np.testing.assert_allclose(values, [0.1, 0.2, 0.3])

    def test_empty_seeds_rejected(self):
        with pytest.raises(EvaluationError):
            seed_resampled_aps(lambda seed: None, seeds=())


class TestPairedComparisonDataclass:
    def test_significance_rule(self):
        significant = PairedComparison(0.2, 0.1, 0.3, 0.01, 100)
        assert significant.significant
        straddling = PairedComparison(0.05, -0.02, 0.12, 0.3, 100)
        assert not straddling.significant
