"""Unit tests for the RetrievalService facade and batch execution."""

import pytest

from repro.api.query import Query
from repro.api.service import RetrievalService
from repro.core.feedback import select_examples
from repro.errors import DatabaseError, LearnerError, QueryError
from repro.session import RetrievalSession


@pytest.fixture()
def service(tiny_scene_db) -> RetrievalService:
    return RetrievalService(tiny_scene_db)


def _waterfall_query(database, learner="dd", params=None, seed=3, **kwargs) -> Query:
    selection = select_examples(
        database, database.image_ids, "waterfall", n_positive=3, n_negative=3,
        seed=seed,
    )
    if params is None:
        params = {"scheme": "identical", "max_iterations": 30, "seed": seed}
    return Query(
        positive_ids=selection.positive_ids,
        negative_ids=selection.negative_ids,
        learner=learner,
        params=params,
        **kwargs,
    )


class TestSingleQuery:
    def test_dd_query(self, service, tiny_scene_db):
        query = _waterfall_query(tiny_scene_db, top_k=5)
        result = service.query(query)
        assert result.concept is not None
        assert result.training is not None
        # top_k truncates the ranking server-side; total_candidates still
        # reports how many images competed (everything but the examples).
        assert len(result.ranking) == 5
        assert result.ranking.is_truncated
        assert result.total_candidates == len(tiny_scene_db) - 6
        assert len(result.top()) == 5
        assert result.timing.total_seconds > 0

    def test_examples_excluded(self, service, tiny_scene_db):
        query = _waterfall_query(tiny_scene_db)
        result = service.query(query)
        assert not set(query.example_ids) & set(result.ranking.image_ids)

    def test_all_concept_learners_share_the_query_path(self, service, tiny_scene_db):
        # The acceptance criterion: dd, emdd and maron-ratan all train and
        # rank through the same RetrievalService.query() path.
        per_learner = {
            "dd": {"scheme": "identical", "max_iterations": 30, "seed": 3},
            "emdd": {"inner_scheme": "identical", "max_inner_iterations": 30,
                     "seed": 3},
            "maron-ratan": {"scheme": "identical", "max_iterations": 30,
                            "grid": 4, "seed": 3},
        }
        for learner, params in per_learner.items():
            result = service.query(
                _waterfall_query(tiny_scene_db, learner=learner, params=params)
            )
            assert result.concept is not None, learner
            assert len(result.ranking) == len(tiny_scene_db) - 6, learner

    def test_baseline_learners_share_the_query_path(self, service, tiny_scene_db):
        for learner, params in (("random", {"seed": 3}),
                                ("global-correlation", {"resolution": 6})):
            result = service.query(
                _waterfall_query(tiny_scene_db, learner=learner, params=params)
            )
            assert result.concept is None
            assert len(result.ranking) == len(tiny_scene_db) - 6

    def test_baseline_learners_honour_top_k(self, service, tiny_scene_db):
        for learner, params in (("random", {"seed": 3}),
                                ("global-correlation", {"resolution": 6})):
            result = service.query(
                _waterfall_query(
                    tiny_scene_db, learner=learner, params=params, top_k=4
                )
            )
            assert len(result.ranking) == 4, learner
            assert result.total_candidates == len(tiny_scene_db) - 6, learner

    def test_legacy_custom_corpus_ranks_whole_database(self, tiny_scene_db):
        # A user learner whose corpus only implements the legacy protocol
        # (explicit-id retrieval_candidates, no packed()) must still serve
        # the default whole-database query.
        from repro.api.learners import (
            DiverseDensityLearner,
            register_learner,
        )
        from repro.core.retrieval import RetrievalCandidate

        class LegacyCorpus:
            def __init__(self, database):
                self._database = database

            def instances_for(self, image_id):
                return self._database.instances_for(image_id)

            def category_of(self, image_id):
                return self._database.category_of(image_id)

            def retrieval_candidates(self, ids):
                return [
                    RetrievalCandidate(
                        image_id=i,
                        category=self.category_of(i),
                        instances=self.instances_for(i),
                    )
                    for i in ids
                ]

        class LegacyCorpusLearner(DiverseDensityLearner):
            name = "legacy-corpus-dd"

            def corpus(self, database):
                return LegacyCorpus(database)

            @property
            def corpus_key(self):
                return "legacy-corpus"

        register_learner("legacy-corpus-dd", LegacyCorpusLearner,
                         overwrite=True)
        service = RetrievalService(tiny_scene_db)
        result = service.query(
            _waterfall_query(tiny_scene_db, learner="legacy-corpus-dd")
        )
        assert len(result.ranking) == len(tiny_scene_db) - 6

    def test_every_learner_rejects_non_positive_top_k(self, service, tiny_scene_db):
        # The Query validates top_k itself; the model-level check keeps the
        # direct rank_with path consistent across learner families.
        for learner, params in (("dd", None), ("random", {"seed": 3}),
                                ("global-correlation", {"resolution": 6})):
            fitted = service.fit(
                tiny_scene_db.ids_in_category("waterfall")[:2],
                learner=learner,
                params=params or {"scheme": "identical", "max_iterations": 20,
                                  "seed": 3},
            )
            with pytest.raises(DatabaseError, match="top_k"):
                service.rank_with(fitted, top_k=0)

    def test_candidate_subset(self, service, tiny_scene_db):
        subset = tiny_scene_db.ids_in_category("sunset")
        query = _waterfall_query(tiny_scene_db, candidate_ids=subset)
        result = service.query(query)
        assert set(result.ranking.image_ids) <= set(subset)

    def test_category_filter_round_trip(self, service, tiny_scene_db):
        query = _waterfall_query(tiny_scene_db, category_filter="sunset")
        result = service.query(query)
        expected = [
            i for i in tiny_scene_db.ids_in_category("sunset")
            if i not in query.example_ids
        ]
        assert result.ranking.total_candidates == len(expected)
        assert all(e.category == "sunset" for e in result.ranking)

    def test_top_k_ranking_is_prefix_of_full(self, service, tiny_scene_db):
        full = service.query(_waterfall_query(tiny_scene_db))
        truncated = service.query(_waterfall_query(tiny_scene_db, top_k=3))
        assert truncated.ranking.image_ids == full.ranking.image_ids[:3]
        assert truncated.total_candidates == len(full.ranking)

    def test_history_counts_all_candidates_despite_top_k(
        self, service, tiny_scene_db
    ):
        service.query(_waterfall_query(tiny_scene_db, top_k=2, query_id="t"))
        record = service.history[-1]
        assert record.n_candidates == len(tiny_scene_db) - 6

    def test_unknown_example_id(self, service):
        with pytest.raises(DatabaseError, match="unknown image id"):
            service.query(Query(positive_ids=("nope",), params={"seed": 0}))

    def test_unknown_candidate_id(self, service, tiny_scene_db):
        query = _waterfall_query(tiny_scene_db, candidate_ids=("nope",))
        with pytest.raises(DatabaseError, match="unknown image id"):
            service.query(query)

    def test_unknown_learner(self, service, tiny_scene_db):
        query = _waterfall_query(tiny_scene_db, learner="nope", params={})
        with pytest.raises(LearnerError, match="unknown learner"):
            service.query(query)

    def test_non_query_rejected(self, service):
        with pytest.raises(QueryError, match="expected a Query"):
            service.query("not a query")

    def test_history_records_timing(self, service, tiny_scene_db):
        service.query(_waterfall_query(tiny_scene_db, query_id="q-1"))
        service.query(_waterfall_query(tiny_scene_db, query_id="q-2", seed=4))
        history = service.history
        assert [record.query_id for record in history] == ["q-1", "q-2"]
        assert all(record.timing.total_seconds > 0 for record in history)
        assert all(record.learner == "dd" for record in history)

    def test_warm_precomputes(self, service, tiny_scene_db):
        assert service.warm("dd") == len(tiny_scene_db)
        assert service.warm("maron-ratan", grid=4) == len(tiny_scene_db)


class TestBatchQuery:
    def _queries(self, database) -> list[Query]:
        queries = []
        for index, category in enumerate(database.categories()):
            selection = select_examples(
                database, database.image_ids, category,
                n_positive=2, n_negative=2, seed=10 + index,
            )
            learner = ("dd", "emdd", "random")[index % 3]
            params = {
                "dd": {"scheme": "identical", "max_iterations": 25,
                       "seed": 10 + index},
                "emdd": {"inner_scheme": "identical", "max_inner_iterations": 25,
                         "seed": 10 + index},
                "random": {"seed": 10 + index},
            }[learner]
            queries.append(
                Query(
                    positive_ids=selection.positive_ids,
                    negative_ids=selection.negative_ids,
                    learner=learner,
                    params=params,
                    query_id=category,
                )
            )
        return queries

    def test_results_in_request_order(self, service, tiny_scene_db):
        queries = self._queries(tiny_scene_db)
        results = service.batch_query(queries, workers=2)
        assert [r.query.query_id for r in results] == [q.query_id for q in queries]

    def test_parallel_matches_sequential_bit_identical(self, tiny_scene_db):
        # Fresh services so corpus caches cannot leak between the two runs.
        queries = self._queries(tiny_scene_db)
        sequential = RetrievalService(tiny_scene_db).batch_query(queries)
        parallel = RetrievalService(tiny_scene_db).batch_query(queries, workers=4)
        for seq, par in zip(sequential, parallel):
            assert seq.ranking.image_ids == par.ranking.image_ids
            assert list(seq.ranking.distances) == list(par.ranking.distances)

    def test_repeated_parallel_runs_identical(self, service, tiny_scene_db):
        queries = self._queries(tiny_scene_db)
        first = service.batch_query(queries, workers=4)
        second = service.batch_query(queries, workers=3)
        for a, b in zip(first, second):
            assert a.ranking.image_ids == b.ranking.image_ids

    def test_bad_workers_rejected(self, service):
        with pytest.raises(QueryError, match="workers"):
            service.batch_query([], workers=0)

    def test_empty_batch(self, service):
        assert service.batch_query([], workers=4) == []


class TestSessionServiceParity:
    def test_session_matches_service(self, tiny_scene_db):
        session = RetrievalSession(
            tiny_scene_db, scheme="identical", max_iterations=40, seed=4
        )
        session.add_examples("waterfall", 3, 3)
        session_result = session.train_and_rank()

        service = RetrievalService(tiny_scene_db)
        result = service.query(
            Query(
                positive_ids=session.positive_ids,
                negative_ids=session.negative_ids,
                learner="dd",
                params={"scheme": "identical", "max_iterations": 40, "seed": 4},
            )
        )
        assert result.ranking.image_ids == session_result.image_ids
        assert list(result.ranking.distances) == list(session_result.distances)
        assert result.concept.nll == session.concept.nll

    def test_session_with_emdd_learner(self, tiny_scene_db):
        session = RetrievalSession(
            tiny_scene_db, scheme="identical", max_iterations=30, seed=4,
            learner="emdd",
        )
        session.add_examples("waterfall", 3, 3)
        result = session.train_and_rank()
        assert len(result) == len(tiny_scene_db) - 6
        assert "emdd" in session.concept.scheme

    def test_sessions_can_share_a_service(self, tiny_scene_db):
        service = RetrievalService(tiny_scene_db)
        a = RetrievalSession(
            tiny_scene_db, scheme="identical", max_iterations=30, seed=4,
            service=service,
        )
        b = RetrievalSession(
            tiny_scene_db, scheme="identical", max_iterations=30, seed=5,
            service=service,
        )
        a.add_examples("waterfall", 2, 2)
        b.add_examples("sunset", 2, 2)
        a.train_and_rank()
        b.train_and_rank()
        assert len(service.history) == 0  # sessions use fit/rank_with, not query


class TestHistoryBoundAndStats:
    def test_history_is_bounded(self, tiny_scene_db):
        service = RetrievalService(tiny_scene_db, max_history=2)
        queries = [
            _waterfall_query(tiny_scene_db, learner="random", params={"seed": s},
                             query_id=f"q{s}")
            for s in range(4)
        ]
        for query in queries:
            service.query(query)
        history = service.history
        assert len(history) == 2
        # The most recent records survive, oldest are dropped.
        assert [record.query_id for record in history] == ["q2", "q3"]

    def test_lifetime_count_survives_trimming(self, tiny_scene_db):
        service = RetrievalService(tiny_scene_db, max_history=1)
        for s in range(3):
            service.query(
                _waterfall_query(tiny_scene_db, learner="random",
                                 params={"seed": s})
            )
        stats = service.stats()
        assert stats["n_queries"] == 3
        assert stats["history_len"] == 1
        assert stats["max_history"] == 1

    def test_unbounded_history_still_supported(self, tiny_scene_db):
        service = RetrievalService(tiny_scene_db, max_history=None)
        for s in range(3):
            service.query(
                _waterfall_query(tiny_scene_db, learner="random",
                                 params={"seed": s})
            )
        assert len(service.history) == 3
        assert service.stats()["max_history"] is None

    def test_zero_history_keeps_nothing_but_counts(self, tiny_scene_db):
        service = RetrievalService(tiny_scene_db, max_history=0)
        service.query(
            _waterfall_query(tiny_scene_db, learner="random", params={"seed": 0})
        )
        assert service.history == ()
        assert service.stats()["n_queries"] == 1

    def test_negative_bound_rejected(self, tiny_scene_db):
        with pytest.raises(QueryError, match="max_history"):
            RetrievalService(tiny_scene_db, max_history=-1)

    def test_stats_reports_cache_and_corpora(self, service, tiny_scene_db):
        service.query(_waterfall_query(tiny_scene_db))
        stats = service.stats()
        assert stats["n_images"] == len(tiny_scene_db)
        assert "region-bags" in stats["corpus_keys"]
        assert stats["cache"]["misses"] >= 1
        assert 0.0 <= stats["cache"]["hit_rate"] <= 1.0

    def test_adopt_corpus_requires_a_key(self, service, tiny_scene_db):
        with pytest.raises(QueryError, match="non-empty"):
            service.adopt_corpus("", tiny_scene_db)
        service.adopt_corpus("custom", tiny_scene_db)
        assert "custom" in service.corpus_keys
        assert service.get_corpus("custom") is tiny_scene_db
        with pytest.raises(QueryError, match="no corpus cached"):
            service.get_corpus("missing")
