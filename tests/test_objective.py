"""Unit tests for the Diverse Density objective (noisy-or NLL + gradients)."""

import numpy as np
import pytest

from repro.bags.bag import Bag, BagSet
from repro.core.objective import DiverseDensityObjective
from repro.errors import TrainingError


def naive_nll(bag_set: BagSet, t: np.ndarray, w: np.ndarray) -> float:
    """Direct, unvectorised transcription of the Section 2.2 model."""
    total = 0.0
    for bag in bag_set.bags:
        probs = np.array(
            [np.exp(-float(w @ ((x - t) ** 2))) for x in bag.instances]
        )
        probs = np.clip(probs, 0.0, 1.0 - 1e-12)
        q = float(np.prod(1.0 - probs))
        bag_probability = (1.0 - q) if bag.label else q
        total -= np.log(max(bag_probability, 1e-300))
    return total


def simple_bag_set() -> BagSet:
    rng = np.random.default_rng(0)
    bag_set = BagSet()
    for i in range(3):
        bag_set.add(
            Bag(instances=rng.normal(0, 1, size=(4, 3)), label=True, bag_id=f"p{i}")
        )
    for i in range(2):
        bag_set.add(
            Bag(instances=rng.normal(2, 1, size=(5, 3)), label=False, bag_id=f"n{i}")
        )
    return bag_set


class TestValue:
    def test_matches_naive_implementation(self):
        bag_set = simple_bag_set()
        objective = DiverseDensityObjective(bag_set)
        rng = np.random.default_rng(1)
        for _ in range(5):
            t = rng.normal(size=3)
            w = rng.uniform(0.1, 2.0, size=3)
            assert objective.value(t, w) == pytest.approx(
                naive_nll(bag_set, t, w), rel=1e-9
            )

    def test_nll_nonnegative(self):
        # Every bag probability is <= 1, so -log DD >= 0.
        bag_set = simple_bag_set()
        objective = DiverseDensityObjective(bag_set)
        rng = np.random.default_rng(2)
        for _ in range(10):
            value = objective.value(rng.normal(size=3), rng.uniform(0, 2, size=3))
            assert value >= -1e-12

    def test_sitting_on_positive_instance_lowers_nll(self):
        bag_set = simple_bag_set()
        objective = DiverseDensityObjective(bag_set)
        w = np.ones(3)
        on_instance = objective.value(bag_set.positive_bags[0].instances[0], w)
        far_away = objective.value(np.full(3, 50.0), w)
        assert on_instance < far_away

    def test_requires_positive_bag(self):
        bag_set = BagSet([Bag(instances=np.zeros((2, 3)), label=False, bag_id="n")])
        with pytest.raises(Exception):
            DiverseDensityObjective(bag_set)

    def test_negative_weights_rejected(self):
        objective = DiverseDensityObjective(simple_bag_set())
        with pytest.raises(TrainingError):
            objective.value(np.zeros(3), np.array([1.0, -1.0, 1.0]))

    def test_dimension_mismatch_rejected(self):
        objective = DiverseDensityObjective(simple_bag_set())
        with pytest.raises(TrainingError):
            objective.value(np.zeros(4), np.ones(4))

    def test_on_negative_instance_is_finite(self):
        # t exactly on a negative instance drives p -> 1; clamping must keep
        # the NLL finite.
        bag_set = simple_bag_set()
        objective = DiverseDensityObjective(bag_set)
        t = bag_set.negative_bags[0].instances[0]
        value = objective.value(t, np.ones(3))
        assert np.isfinite(value)


class TestGradients:
    @staticmethod
    def numerical_gradient(fun, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
        grad = np.zeros_like(x)
        for k in range(x.size):
            forward = x.copy()
            forward[k] += eps
            backward = x.copy()
            backward[k] -= eps
            grad[k] = (fun(forward) - fun(backward)) / (2 * eps)
        return grad

    def test_grad_t_matches_finite_differences(self):
        bag_set = simple_bag_set()
        objective = DiverseDensityObjective(bag_set)
        rng = np.random.default_rng(3)
        t = rng.normal(size=3)
        w = rng.uniform(0.3, 1.5, size=3)
        _, grad_t, _ = objective.value_and_grad(t, w)
        numeric = self.numerical_gradient(lambda x: objective.value(x, w), t)
        np.testing.assert_allclose(grad_t, numeric, rtol=1e-4, atol=1e-7)

    def test_grad_w_matches_finite_differences(self):
        bag_set = simple_bag_set()
        objective = DiverseDensityObjective(bag_set)
        rng = np.random.default_rng(4)
        t = rng.normal(size=3)
        w = rng.uniform(0.3, 1.5, size=3)
        _, _, grad_w = objective.value_and_grad(t, w)
        numeric = self.numerical_gradient(lambda x: objective.value(t, x), w)
        np.testing.assert_allclose(grad_w, numeric, rtol=1e-4, atol=1e-7)

    def test_squared_parametrisation_chain_rule(self):
        bag_set = simple_bag_set()
        objective = DiverseDensityObjective(bag_set)
        rng = np.random.default_rng(5)
        t = rng.normal(size=3)
        s = rng.uniform(0.5, 1.5, size=3)
        value, grad_t, grad_s = objective.value_and_grad_squared(t, s)
        _, expected_t, grad_w = objective.value_and_grad(t, s * s)
        assert value == pytest.approx(objective.value(t, s * s))
        np.testing.assert_allclose(grad_t, expected_t)
        np.testing.assert_allclose(grad_s, grad_w * 2 * s)

    def test_alpha_scales_weight_gradient_only(self):
        objective = DiverseDensityObjective(simple_bag_set())
        rng = np.random.default_rng(6)
        t = rng.normal(size=3)
        s = rng.uniform(0.5, 1.5, size=3)
        _, grad_t_1, grad_s_1 = objective.value_and_grad_squared(t, s, alpha=1.0)
        _, grad_t_50, grad_s_50 = objective.value_and_grad_squared(t, s, alpha=50.0)
        np.testing.assert_allclose(grad_t_1, grad_t_50)
        np.testing.assert_allclose(grad_s_1, grad_s_50 * 50.0)

    def test_invalid_alpha_rejected(self):
        objective = DiverseDensityObjective(simple_bag_set())
        with pytest.raises(TrainingError):
            objective.value_and_grad_squared(np.zeros(3), np.ones(3), alpha=0.0)

    def test_gradient_zero_far_from_everything(self):
        # Far away, all probabilities vanish and the positive term dominates
        # but saturates; gradients should be tiny, not NaN.
        objective = DiverseDensityObjective(simple_bag_set())
        value, grad_t, grad_w = objective.value_and_grad(
            np.full(3, 100.0), np.ones(3)
        )
        assert np.isfinite(value)
        assert np.all(np.isfinite(grad_t))
        assert np.all(np.isfinite(grad_w))


class TestBagProbabilities:
    def test_shapes(self):
        bag_set = simple_bag_set()
        objective = DiverseDensityObjective(bag_set)
        pos, neg = objective.bag_probabilities(np.zeros(3), np.ones(3))
        assert pos.shape == (3,)
        assert neg.shape == (2,)

    def test_ranges(self):
        objective = DiverseDensityObjective(simple_bag_set())
        pos, neg = objective.bag_probabilities(np.zeros(3), np.ones(3))
        assert np.all((pos >= 0) & (pos <= 1))
        assert np.all((neg >= 0) & (neg <= 1))

    def test_on_positive_instance_probability_near_one(self):
        bag_set = simple_bag_set()
        objective = DiverseDensityObjective(bag_set)
        t = bag_set.positive_bags[1].instances[2]
        pos, _ = objective.bag_probabilities(t, np.ones(3) * 10.0)
        assert pos[1] > 0.99

    def test_counts_exposed(self):
        objective = DiverseDensityObjective(simple_bag_set())
        assert objective.n_positive_bags == 3
        assert objective.n_negative_bags == 2
        assert objective.n_dims == 3
