"""Unit tests for the BagGenerator and experiment database helpers."""

import numpy as np
import pytest

from repro.bags.generation import BagGenerator
from repro.errors import BagError
from repro.experiments.databases import base_config_kwargs, object_database, scene_database
from repro.experiments.scale import resolve_scale
from repro.imaging.features import FeatureConfig
from repro.imaging.image import GrayImage
from repro.imaging.regions import region_family


def textured_image(seed: int = 0) -> GrayImage:
    plane = np.random.default_rng(seed).uniform(0.1, 0.9, size=(48, 48))
    return GrayImage(pixels=plane, image_id=f"gen-{seed}")


@pytest.fixture()
def generator() -> BagGenerator:
    return BagGenerator(FeatureConfig(resolution=5, region_family=region_family("small9")))


class TestBagGenerator:
    def test_bag_for_labels(self, generator):
        image = textured_image()
        positive = generator.bag_for(image, label=True)
        negative = generator.bag_for(image, label=False)
        assert positive.label is True
        assert negative.label is False
        np.testing.assert_array_equal(positive.instances, negative.instances)

    def test_bag_id_from_image(self, generator):
        bag = generator.bag_for(textured_image(3), label=True)
        assert bag.bag_id == "gen-3"

    def test_sources_propagated(self, generator):
        bag = generator.bag_for(textured_image(1), label=True)
        assert len(bag.sources) == bag.n_instances
        assert bag.sources[0] == "full"
        assert any("mirrored" in source for source in bag.sources)

    def test_constant_image_raises_bag_error(self, generator):
        constant = GrayImage(pixels=np.full((32, 32), 0.5), image_id="flat")
        with pytest.raises(BagError) as excinfo:
            generator.bag_for(constant, label=True)
        assert "flat" in str(excinfo.value)

    def test_features_for_matches_bag(self, generator):
        image = textured_image(5)
        features = generator.features_for(image)
        bag = BagGenerator.bag_from_features(features, label=True, bag_id="x")
        np.testing.assert_array_equal(bag.instances, features.vectors)

    def test_config_exposed(self, generator):
        assert generator.config.resolution == 5


class TestExperimentDatabaseHelpers:
    def test_base_config_kinds(self):
        scale = resolve_scale("quick")
        scenes = base_config_kwargs(scale, kind="scenes")
        objects = base_config_kwargs(scale, kind="objects")
        assert scenes["training_fraction"] == scale.scene_training_fraction
        assert objects["training_fraction"] == scale.object_training_fraction
        assert scenes["rounds"] == scale.rounds

    def test_scene_database_cached(self):
        scale = resolve_scale("quick")
        first = scene_database(scale)
        second = scene_database(scale)
        assert first is second

    def test_object_database_cached_by_family(self):
        scale = resolve_scale("quick")
        default = object_database(scale)
        small = object_database(scale, family="small9")
        assert default is not small
        assert default is object_database(scale)

    def test_database_sizes_match_scale(self):
        scale = resolve_scale("quick")
        database = scene_database(scale)
        assert len(database) == 5 * scale.scene_images_per_category
