"""Scatter/gather ranking tests: ScatterRanker / fragment_candidates /
seed_threshold / WorkerPool.scatter, including the bit-identity property
across pool widths and a crash-and-restart mid-sequence."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.service import RetrievalService
from repro.core.concept import LearnedConcept
from repro.core.retrieval import Ranker, build_result, keep_mask, rank_by_loop, top_order
from repro.core.sharding import (
    SEED_SAMPLE_BAGS,
    ShardedRanker,
    _shared_pool,
    seed_threshold,
)
from repro.datasets.synth import corpus_from_config
from repro.datasets.synth.config import ScenarioConfig
from repro.errors import DatabaseError, ServeError
from repro.serve import codec
from repro.serve.app import ServiceApp, handle_safely
from repro.serve.scatter import ScatterRanker
from repro.serve.workers import WorkerDispatchApp, WorkerPool

_CONFIG = ScenarioConfig(
    name="scatter-test",
    mode="feature",
    categories=tuple(f"cat{i}" for i in range(6)),
    feature_dims=6,
    instances_per_bag=3,
    cluster_spread=0.2,
).with_total_bags(48)


@pytest.fixture(scope="module")
def packed():
    return corpus_from_config(_CONFIG)


@pytest.fixture(scope="module")
def local_service(packed):
    return RetrievalService(packed)


@pytest.fixture(scope="module")
def apps(local_service):
    """Scatter-enabled dispatch apps over pools of width 1, 2, and odd 3."""
    pools = {}
    built = {}
    try:
        for width in (1, 2, 3):
            pool = WorkerPool.from_service(local_service, width)
            pools[width] = pool
            built[width] = WorkerDispatchApp(
                pool, service=local_service, min_scatter_bags=1
            )
        yield built
    finally:
        for pool in pools.values():
            pool.stop()


def _concept(packed, bag: int = 0, weight: float = 1.0) -> LearnedConcept:
    return LearnedConcept(
        t=packed.instances[bag], w=np.full(packed.n_dims, weight), nll=0.0
    )


def _rank_payload(concept, **extra) -> dict:
    return codec.envelope(
        "rank", {"concept": codec.encode_concept(concept), **extra}
    )


class TestSharedPools:
    """Satellite: explicit-width ShardedRanker pools are cached, not per-query."""

    def test_pools_cached_per_width(self):
        assert _shared_pool(3) is _shared_pool(3)
        assert _shared_pool() is _shared_pool()
        assert _shared_pool(2) is not _shared_pool(3)
        assert _shared_pool(3) is not _shared_pool()

    def test_explicit_width_rank_still_exact(self, packed):
        concept = _concept(packed, bag=7, weight=0.6)
        exhaustive = Ranker(auto_shard=False).rank(concept, packed, top_k=9)
        for _ in range(3):  # repeated queries reuse the cached pool
            sharded = ShardedRanker(workers=2).rank(concept, packed, top_k=9)
            assert sharded.image_ids == exhaustive.image_ids
            np.testing.assert_array_equal(
                sharded.distances, exhaustive.distances
            )


class TestSeedThreshold:
    def test_seed_is_safe_overestimate_of_kth_best(self, packed):
        index = packed.shard_index(4)
        keep = keep_mask(packed, (), None)
        exact = np.sort(packed.min_distances(_concept(packed)))
        for top_k in (1, 3, 10):
            seed = seed_threshold(packed, index, _concept(packed), keep, top_k)
            assert np.isfinite(seed)
            assert seed >= exact[top_k - 1]

    def test_seed_respects_keep_mask(self, packed):
        index = packed.shard_index(4)
        concept = _concept(packed, bag=2)
        keep = keep_mask(packed, (), "cat0")
        kept = int(np.count_nonzero(keep))
        exact = np.sort(packed.min_distances(concept)[keep])
        seed = seed_threshold(packed, index, concept, keep, 2)
        assert kept > 2 and seed >= exact[1]

    def test_inf_when_sample_cannot_fill_top_k(self, packed):
        index = packed.shard_index(4)
        keep = keep_mask(packed, (), None)
        assert seed_threshold(
            packed, index, _concept(packed), keep, packed.n_bags
        ) == float("inf")
        # A sparse stride sample smaller than top_k must also refuse to
        # guess: the max of a partial sample is not a bound on the kth.
        assert seed_threshold(
            packed, index, _concept(packed), keep, 8, sample_bags=4
        ) == float("inf") or seed_threshold(
            packed, index, _concept(packed), keep, 8, sample_bags=4
        ) >= np.sort(packed.min_distances(_concept(packed)))[7]

    def test_validation(self, packed):
        index = packed.shard_index(4)
        keep = keep_mask(packed, (), None)
        with pytest.raises(DatabaseError):
            seed_threshold(packed, index, _concept(packed), keep, 0)
        with pytest.raises(DatabaseError):
            seed_threshold(
                packed, index, _concept(packed), keep, 5, sample_bags=0
            )
        other = corpus_from_config(_CONFIG)
        with pytest.raises(DatabaseError):
            seed_threshold(other, index, _concept(packed), keep, 5)

    def test_default_sample_budget_is_bounded(self):
        assert SEED_SAMPLE_BAGS == 4096


class TestFragmentCandidates:
    def _merge(self, packed, frags, top_k, total):
        pos = np.concatenate([f[0] for f in frags])
        dist = np.concatenate([f[1] for f in frags])
        ids = packed.id_array[pos]
        categories = packed.category_array[pos]
        order = top_order(ids, dist, top_k)
        return build_result(ids, categories, dist, order, total)

    @pytest.mark.parametrize("cuts", [(0, 48), (0, 20, 48), (0, 5, 11, 30, 48)])
    def test_fragment_union_merges_bit_identical(self, packed, cuts):
        concept = _concept(packed, bag=11, weight=0.8)
        top_k = 5
        ranker = ShardedRanker()
        frags = [
            ranker.fragment_candidates(
                concept, packed, top_k=top_k, start=a, stop=b
            )
            for a, b in zip(cuts, cuts[1:])
        ]
        merged = self._merge(packed, frags, top_k, packed.n_bags)
        exhaustive = Ranker(auto_shard=False).rank(concept, packed, top_k=top_k)
        assert merged.image_ids == exhaustive.image_ids
        np.testing.assert_array_equal(merged.distances, exhaustive.distances)

    def test_seeded_threshold_does_not_change_result(self, packed):
        concept = _concept(packed, bag=3)
        index = packed.shard_index()
        keep = keep_mask(packed, (), None)
        seed = seed_threshold(packed, index, concept, keep, 4)
        ranker = ShardedRanker()
        frags = [
            ranker.fragment_candidates(
                concept, packed, top_k=4, start=a, stop=b,
                initial_threshold=seed,
            )
            for a, b in ((0, 24), (24, 48))
        ]
        merged = self._merge(packed, frags, 4, packed.n_bags)
        exhaustive = Ranker(auto_shard=False).rank(concept, packed, top_k=4)
        assert merged.image_ids == exhaustive.image_ids
        np.testing.assert_array_equal(merged.distances, exhaustive.distances)

    def test_filters_apply_inside_fragment(self, packed):
        concept = _concept(packed, bag=9)
        exclude = tuple(packed.image_ids[:3])
        frags = [
            ShardedRanker().fragment_candidates(
                concept, packed, top_k=3, start=a, stop=b,
                exclude=exclude, category_filter="cat1",
            )
            for a, b in ((0, 30), (30, 48))
        ]
        keep = keep_mask(packed, exclude, "cat1")
        merged = self._merge(packed, frags, 3, int(np.count_nonzero(keep)))
        reference = Ranker(auto_shard=False).rank(
            concept, packed, top_k=3, exclude=exclude, category_filter="cat1"
        )
        assert merged.image_ids == reference.image_ids
        np.testing.assert_array_equal(merged.distances, reference.distances)

    def test_empty_range_is_empty(self, packed):
        idx, dist, evaluated = ShardedRanker().fragment_candidates(
            _concept(packed), packed, top_k=5, start=17, stop=17
        )
        assert idx.size == 0 and dist.size == 0 and evaluated == 0

    def test_n_evaluated_counts_bound_pass_survivors(self, packed):
        idx, dist, evaluated = ShardedRanker().fragment_candidates(
            _concept(packed, bag=5), packed, top_k=2, start=0, stop=48
        )
        assert idx.size >= 2
        assert evaluated >= idx.size
        assert evaluated <= packed.n_bags

    def test_validation(self, packed):
        with pytest.raises(DatabaseError):
            ShardedRanker().fragment_candidates(
                _concept(packed), packed, top_k=0, start=0, stop=48
            )
        with pytest.raises(DatabaseError):
            ShardedRanker().fragment_candidates(
                _concept(packed), packed, top_k=5, start=10, stop=9
            )
        with pytest.raises(DatabaseError):
            ShardedRanker().fragment_candidates(
                _concept(packed), packed, top_k=5, start=0, stop=49
            )


class TestRankFragmentEndpoint:
    def test_round_trip(self, local_service, packed):
        app = ServiceApp(local_service)
        status, reply = handle_safely(
            app,
            "rank_fragment",
            codec.envelope(
                "rank_fragment",
                {
                    "concept": codec.encode_concept(_concept(packed)),
                    "top_k": 5,
                    "start": 0,
                    "stop": 48,
                },
            ),
        )
        assert status == 200, reply
        assert reply["kind"] == "rank_fragment_result"
        assert len(reply["positions"]) == len(reply["distances"]) >= 5
        assert reply["n_evaluated"] >= len(reply["positions"])

    def test_missing_concept_is_400(self, local_service):
        app = ServiceApp(local_service)
        status, reply = handle_safely(
            app,
            "rank_fragment",
            codec.envelope(
                "rank_fragment", {"top_k": 5, "start": 0, "stop": 48}
            ),
        )
        assert status == 400 and reply["error"] == "CodecError"

    def test_non_integer_bounds_are_400(self, local_service, packed):
        app = ServiceApp(local_service)
        status, reply = handle_safely(
            app,
            "rank_fragment",
            codec.envelope(
                "rank_fragment",
                {
                    "concept": codec.encode_concept(_concept(packed)),
                    "top_k": 5,
                    "start": "0",
                    "stop": 48,
                },
            ),
        )
        assert status == 400 and reply["error"] == "CodecError"


class TestWorkerPoolScatter:
    def test_replies_in_payload_order(self, apps, packed):
        pool = apps[2].pool
        concept = codec.encode_concept(_concept(packed))
        payloads = [
            codec.envelope(
                "rank_fragment",
                {"concept": concept, "top_k": 3, "start": a, "stop": b},
            )
            for a, b in ((0, 24), (24, 48))
        ]
        replies = pool.scatter("rank_fragment", payloads)
        assert len(replies) == 2
        seen = set()
        for status, reply in replies:
            assert status == 200, reply
            seen.update(int(p) for p in reply["positions"])
        assert seen  # both halves contributed disjoint positions

    def test_more_payloads_than_workers_rejected(self, apps, packed):
        pool = apps[1].pool
        payload = codec.envelope(
            "rank_fragment",
            {
                "concept": codec.encode_concept(_concept(packed)),
                "top_k": 3,
                "start": 0,
                "stop": 48,
            },
        )
        with pytest.raises(ServeError):
            pool.scatter("rank_fragment", [payload, payload])


class TestBroadcastRetry:
    """Satellite: broadcast survives a worker dying between alive() and request()."""

    def test_broadcast_retries_on_restarted_worker(self, local_service):
        with WorkerPool.from_service(local_service, 2) as pool:
            pool._workers[1].process.kill()
            pool._workers[1].process.join(10.0)
            replies = pool.broadcast("stats")
            assert len(replies) == 2
            assert all(status == 200 for status, _ in replies)
            assert pool.n_restarts == 1

    def test_scatter_restarts_then_raises(self, local_service, packed):
        with WorkerPool.from_service(local_service, 2) as pool:
            payloads = [
                codec.envelope(
                    "rank_fragment",
                    {
                        "concept": codec.encode_concept(_concept(packed)),
                        "top_k": 3,
                        "start": a,
                        "stop": b,
                    },
                )
                for a, b in ((0, 24), (24, 48))
            ]
            pool._workers[0].process.kill()
            pool._workers[0].process.join(10.0)
            with pytest.raises(ServeError):
                pool.scatter("rank_fragment", payloads)
            assert pool.n_restarts == 1
            # Pool healed: the same scatter now succeeds.
            replies = pool.scatter("rank_fragment", payloads)
            assert all(status == 200 for status, _ in replies)


class TestScatterRouting:
    def test_eligibility_gates(self, apps, packed):
        scatter = apps[2].scatter
        concept = codec.encode_concept(_concept(packed))
        assert scatter.eligible(_rank_payload(_concept(packed), top_k=5))
        assert not scatter.eligible(None)
        assert not scatter.eligible(
            codec.envelope("rank", {"session": "tok", "top_k": 5})
        )
        assert not scatter.eligible(codec.envelope("rank", {"top_k": 5}))
        assert not scatter.eligible(
            codec.envelope(
                "rank",
                {"concept": concept, "top_k": 5, "candidate_ids": ["a"]},
            )
        )
        assert not scatter.eligible(
            codec.envelope("rank", {"concept": concept, "top_k": True})
        )
        assert not scatter.eligible(
            codec.envelope("rank", {"concept": concept, "top_k": 0})
        )
        assert not scatter.eligible(
            codec.envelope("rank", {"concept": concept})
        )

    def test_below_threshold_corpus_does_not_scatter(self, local_service, packed):
        pool = object()  # never touched: eligibility fails first
        scatter = ScatterRanker(
            pool, local_service, min_scatter_bags=packed.n_bags + 1
        )
        assert not scatter.eligible(_rank_payload(_concept(packed), top_k=5))

    def test_zero_disables_scatter_entirely(self, apps):
        pool = apps[1].pool
        app = WorkerDispatchApp(pool, service=None, min_scatter_bags=0)
        assert app.scatter is None

    def test_invalid_knobs_rejected(self, apps, local_service):
        with pytest.raises(ServeError):
            ScatterRanker(apps[1].pool, local_service, min_scatter_bags=-1)
        with pytest.raises(ServeError):
            ScatterRanker(apps[1].pool, local_service, sample_bags=0)

    def test_stats_report_fan_out_and_survivors(self, apps, packed):
        app = apps[2]
        before = app.scatter.stats()["requests"]
        status, reply = app.handle(
            "rank", _rank_payload(_concept(packed, bag=4), top_k=5)
        )
        assert status == 200, reply
        stats = app.stats()
        scatter = stats["scatter"]
        assert scatter["requests"] == before + 1
        last = scatter["last"]
        assert last["fan_out"] == 2
        assert len(last["survivors_per_worker"]) == 2
        assert last["n_candidates"] >= 5
        assert last["scatter_seconds"] >= 0.0
        assert last["merge_seconds"] >= 0.0

    def test_top_k_covering_corpus_delegates_without_fallback(
        self, apps, packed
    ):
        app = apps[2]
        fallbacks = app.scatter.stats()["fallbacks"]
        status, reply = app.handle(
            "rank", _rank_payload(_concept(packed), top_k=packed.n_bags)
        )
        assert status == 200, reply
        remote = codec.decode_ranking(reply["ranking"])
        local = Ranker().rank(_concept(packed), packed, top_k=packed.n_bags)
        assert remote.image_ids == local.image_ids
        assert app.scatter.stats()["fallbacks"] == fallbacks

    def test_crashed_worker_falls_back_then_recovers(self, local_service, packed):
        with WorkerPool.from_service(local_service, 2) as pool:
            app = WorkerDispatchApp(
                pool, service=local_service, min_scatter_bags=1
            )
            payload = _rank_payload(_concept(packed, bag=6), top_k=5)
            local = Ranker().rank(_concept(packed, bag=6), packed, top_k=5)

            pool._workers[0].process.kill()
            pool._workers[0].process.join(10.0)
            status, reply = app.handle("rank", payload)
            assert status == 200, reply
            remote = codec.decode_ranking(reply["ranking"])
            assert remote.image_ids == local.image_ids
            np.testing.assert_array_equal(remote.distances, local.distances)
            assert app.scatter.stats()["fallbacks"] == 1
            assert pool.n_restarts == 1

            # The restarted worker rejoins the fan-out: no second fallback.
            status, reply = app.handle("rank", payload)
            assert status == 200, reply
            remote = codec.decode_ranking(reply["ranking"])
            assert remote.image_ids == local.image_ids
            assert app.scatter.stats()["fallbacks"] == 1


class TestScatterBitIdentity:
    """Satellite: the hypothesis property from the issue."""

    @settings(max_examples=12, deadline=None)
    @given(
        bag=st.integers(min_value=0, max_value=47),
        weight=st.floats(min_value=0.05, max_value=4.0,
                         allow_nan=False, allow_infinity=False),
        top_k=st.sampled_from([1, 3, 10]),
        width=st.sampled_from([1, 2, 3]),
        n_exclude=st.integers(min_value=0, max_value=3),
        use_filter=st.booleans(),
    )
    def test_property_scatter_bit_identical(
        self, apps, packed, bag, weight, top_k, width, n_exclude, use_filter
    ):
        """Scatter == ShardedRanker == Ranker == rank_by_loop across widths,
        filters, and exclusions — ids *and* distances."""
        concept = _concept(packed, bag=bag, weight=weight)
        exclude = list(packed.image_ids[:n_exclude])
        category_filter = "cat2" if use_filter else None
        extra = {"top_k": top_k}
        if exclude:
            extra["exclude"] = exclude
        if category_filter is not None:
            extra["category_filter"] = category_filter
        status, reply = apps[width].handle(
            "rank", _rank_payload(concept, **extra)
        )
        assert status == 200, reply
        remote = codec.decode_ranking(reply["ranking"])

        sharded = ShardedRanker().rank(
            concept, packed, top_k=top_k,
            exclude=exclude, category_filter=category_filter,
        )
        exhaustive = Ranker(auto_shard=False).rank(
            concept, packed, top_k=top_k,
            exclude=exclude, category_filter=category_filter,
        )
        assert remote.image_ids == sharded.image_ids == exhaustive.image_ids
        np.testing.assert_array_equal(remote.distances, sharded.distances)
        np.testing.assert_array_equal(remote.distances, exhaustive.distances)

        loop = rank_by_loop(concept, packed.candidates(), exclude=exclude)
        loop_ids = [
            entry.image_id
            for entry in loop.top(len(loop.image_ids))
            if category_filter is None or entry.category == category_filter
        ]
        assert list(remote.image_ids) == loop_ids[: len(remote)]

    def test_property_survives_crash_and_restart_mid_sequence(
        self, local_service, packed
    ):
        with WorkerPool.from_service(local_service, 2) as pool:
            app = WorkerDispatchApp(
                pool, service=local_service, min_scatter_bags=1
            )
            for round_no in range(3):
                concept = _concept(packed, bag=13 + round_no, weight=1.1)
                local = Ranker().rank(concept, packed, top_k=7)
                status, reply = app.handle(
                    "rank", _rank_payload(concept, top_k=7)
                )
                assert status == 200, reply
                remote = codec.decode_ranking(reply["ranking"])
                assert remote.image_ids == local.image_ids
                np.testing.assert_array_equal(
                    remote.distances, local.distances
                )
                if round_no == 0:
                    victim = pool._workers[round_no % 2]
                    victim.process.kill()
                    victim.process.join(10.0)
            assert pool.n_restarts == 1
