"""Wire-codec tests: exact round-trips (property-based), version gating,
unknown-field tolerance and envelope validation."""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.query import Query, QueryResult, QueryTiming
from repro.core.cache import CacheStats
from repro.core.concept import LearnedConcept
from repro.core.diverse_density import StartRecord, TrainingResult
from repro.core.retrieval import RankedImage, RetrievalResult
from repro.errors import CodecError
from repro.serve import codec

# --------------------------------------------------------------------- #
# Strategies                                                             #
# --------------------------------------------------------------------- #

_ids = st.text(
    alphabet="abcdefghij-0123456789", min_size=1, max_size=12
).filter(lambda s: s.strip())
_floats = st.floats(allow_nan=False, allow_infinity=False, width=64)
_pos_floats = st.floats(min_value=0.0, max_value=1e9, allow_nan=False)


@st.composite
def queries(draw) -> Query:
    positives = draw(st.lists(_ids, min_size=1, max_size=4, unique=True))
    negatives = draw(
        st.lists(
            _ids.filter(lambda s: s not in positives),
            max_size=4,
            unique=True,
        )
    )
    params = draw(
        st.dictionaries(
            st.sampled_from(["scheme", "beta", "seed", "max_iterations"]),
            st.one_of(st.integers(0, 100), _pos_floats, st.sampled_from(["a", "b"])),
            max_size=3,
        )
    )
    return Query(
        positive_ids=tuple(positives),
        negative_ids=tuple(negatives),
        learner=draw(st.sampled_from(["dd", "emdd", "random"])),
        params=params,
        candidate_ids=draw(
            st.none() | st.lists(_ids, max_size=4, unique=True).map(tuple)
        ),
        top_k=draw(st.none() | st.integers(1, 50)),
        category_filter=draw(st.none() | st.sampled_from(["waterfall", "field"])),
        query_id=draw(st.sampled_from(["", "q-1", "tenant/7"])),
    )


@st.composite
def rankings(draw) -> RetrievalResult:
    ids = draw(st.lists(_ids, max_size=6, unique=True))
    ranked = tuple(
        RankedImage(
            rank=position,
            image_id=image_id,
            category=draw(st.sampled_from(["waterfall", "field", "sunset"])),
            distance=draw(_pos_floats),
        )
        for position, image_id in enumerate(ids)
    )
    extra = draw(st.integers(0, 5))
    return RetrievalResult(ranked, total_candidates=len(ranked) + extra)


@st.composite
def concepts(draw) -> LearnedConcept:
    n_dims = draw(st.integers(1, 6))
    t = draw(
        st.lists(_floats.filter(lambda x: abs(x) < 1e12), min_size=n_dims,
                 max_size=n_dims)
    )
    w = draw(st.lists(_pos_floats, min_size=n_dims, max_size=n_dims))
    return LearnedConcept(
        t=np.asarray(t),
        w=np.asarray(w),
        nll=draw(_floats.filter(lambda x: abs(x) < 1e12)),
        scheme=draw(st.sampled_from(["", "inequality", "identical"])),
        metadata=draw(
            st.dictionaries(
                st.sampled_from(["engine", "note"]),
                st.sampled_from(["batched", "sequential", "x"]),
                max_size=2,
            )
        ),
    )


@st.composite
def training_results(draw) -> TrainingResult:
    starts = tuple(
        StartRecord(
            bag_id=draw(_ids),
            instance_index=draw(st.integers(-1, 20)),
            value=draw(_pos_floats),
            n_iterations=draw(st.integers(0, 200)),
            converged=draw(st.booleans()),
            pruned=draw(st.booleans()),
        )
        for _ in range(draw(st.integers(0, 3)))
    )
    return TrainingResult(
        concept=draw(concepts()),
        starts=starts,
        n_starts=len(starts),
        elapsed_seconds=draw(_pos_floats),
        n_starts_pruned=sum(record.pruned for record in starts),
    )


@st.composite
def query_results(draw) -> QueryResult:
    with_concept = draw(st.booleans())
    training = draw(training_results()) if with_concept else None
    return QueryResult(
        query=draw(queries()),
        ranking=draw(rankings()),
        concept=training.concept if training else None,
        training=training,
        timing=QueryTiming(
            fit_seconds=draw(_pos_floats),
            rank_seconds=draw(_pos_floats),
            total_seconds=draw(_pos_floats),
        ),
    )


# --------------------------------------------------------------------- #
# Round-trip properties                                                  #
# --------------------------------------------------------------------- #


@settings(max_examples=50, deadline=None)
@given(queries())
def test_query_round_trip(query):
    rebuilt = codec.decode(codec.encode(query))
    assert isinstance(rebuilt, Query)
    assert codec.wire_equal(rebuilt, query)
    assert rebuilt == query  # Query supports plain equality (no arrays)


@settings(max_examples=50, deadline=None)
@given(rankings())
def test_ranking_round_trip(ranking):
    rebuilt = codec.decode(codec.encode(ranking))
    assert isinstance(rebuilt, RetrievalResult)
    assert codec.wire_equal(rebuilt, ranking)
    assert rebuilt.ranked == ranking.ranked
    assert rebuilt.total_candidates == ranking.total_candidates


@settings(max_examples=50, deadline=None)
@given(concepts())
def test_concept_round_trip(concept):
    rebuilt = codec.decode(codec.encode(concept))
    assert isinstance(rebuilt, LearnedConcept)
    assert codec.wire_equal(rebuilt, concept)
    np.testing.assert_array_equal(rebuilt.t, concept.t)
    np.testing.assert_array_equal(rebuilt.w, concept.w)
    assert rebuilt.nll == concept.nll


@settings(max_examples=50, deadline=None)
@given(training_results())
def test_training_result_round_trip(training):
    rebuilt = codec.decode(codec.encode(training))
    assert isinstance(rebuilt, TrainingResult)
    assert codec.wire_equal(rebuilt, training)
    assert rebuilt.starts == training.starts


@settings(max_examples=25, deadline=None)
@given(query_results())
def test_query_result_round_trip(result):
    rebuilt = codec.decode(codec.encode(result))
    assert isinstance(rebuilt, QueryResult)
    assert codec.wire_equal(rebuilt, result)
    assert rebuilt.ranking.image_ids == result.ranking.image_ids


@settings(max_examples=25, deadline=None)
@given(query_results())
def test_wire_payloads_survive_json(result):
    """The wire form must survive an actual JSON round-trip unchanged."""
    payload = codec.encode(result)
    rebuilt = codec.decode(json.loads(json.dumps(payload)))
    assert codec.wire_equal(rebuilt, result)


def test_cache_stats_round_trip():
    stats = CacheStats(hits=7, misses=3, entries=2, max_entries=128)
    rebuilt = codec.decode(codec.encode(stats))
    assert rebuilt == stats


# --------------------------------------------------------------------- #
# Envelope contract                                                      #
# --------------------------------------------------------------------- #


def _sample_query_payload() -> dict:
    return codec.encode_query(Query(positive_ids=("a",), learner="dd"))


def test_unknown_version_rejected():
    payload = _sample_query_payload()
    payload["version"] = codec.WIRE_VERSION + 1
    with pytest.raises(CodecError, match="unsupported wire version"):
        codec.decode_query(payload)


def test_missing_version_rejected():
    payload = _sample_query_payload()
    del payload["version"]
    with pytest.raises(CodecError, match="unsupported wire version"):
        codec.decode(payload)


def test_unknown_fields_tolerated():
    payload = _sample_query_payload()
    payload["added_in_a_future_minor_rev"] = {"anything": [1, 2, 3]}
    assert codec.decode_query(payload) == Query(positive_ids=("a",), learner="dd")


def test_unknown_kind_rejected():
    with pytest.raises(CodecError, match="unknown wire kind"):
        codec.decode({"kind": "mystery", "version": codec.WIRE_VERSION})


def test_kind_mismatch_rejected():
    with pytest.raises(CodecError, match="expected a 'concept' payload"):
        codec.decode_concept(_sample_query_payload())


def test_non_mapping_rejected():
    with pytest.raises(CodecError, match="must be a mapping"):
        codec.decode(["not", "a", "dict"])


def test_missing_required_field_rejected():
    payload = _sample_query_payload()
    del payload["positive_ids"]
    with pytest.raises(CodecError, match="missing field 'positive_ids'"):
        codec.decode_query(payload)


def test_encode_rejects_unknown_type():
    with pytest.raises(CodecError, match="no wire codec"):
        codec.encode(object())


def test_nested_envelopes_are_version_checked():
    """A stale inner envelope (old concept inside a new result) is rejected."""
    concept = LearnedConcept(t=np.ones(2), w=np.ones(2), nll=0.5)
    training = TrainingResult(concept=concept)
    payload = codec.encode_training_result(training)
    payload["concept"]["version"] = 99
    with pytest.raises(CodecError, match="unsupported wire version"):
        codec.decode_training_result(payload)
