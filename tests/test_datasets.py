"""Unit tests for the synthetic datasets (canvas, scenes, objects, signals)."""

import numpy as np
import pytest

from repro.datasets.base import Canvas, category_rng, jitter, jitter_color
from repro.datasets.loader import (
    build_object_database,
    build_scene_database,
    quick_database,
)
from repro.datasets.objects import OBJECT_CATEGORIES, render_object
from repro.datasets.scenes import SCENE_CATEGORIES, render_scene
from repro.datasets.signals import (
    inversely_correlated_pair,
    perfectly_correlated_pair,
    uncorrelated_pair,
)
from repro.errors import DatasetError
from repro.imaging.correlation import correlation_coefficient


class TestCanvas:
    def test_background_fill(self):
        canvas = Canvas(16, 16, background=(0.2, 0.4, 0.6))
        np.testing.assert_allclose(canvas.rgb[0, 0], [0.2, 0.4, 0.6])

    def test_rect_paints_inside_only(self):
        canvas = Canvas(20, 20, background=(0, 0, 0))
        canvas.rect(0.25, 0.25, 0.75, 0.75, (1, 1, 1))
        assert canvas.rgb[10, 10, 0] == pytest.approx(1.0)
        assert canvas.rgb[0, 0, 0] == pytest.approx(0.0)

    def test_disc_centre_painted(self):
        canvas = Canvas(20, 20, background=(0, 0, 0))
        canvas.disc(0.5, 0.5, 0.2, (1, 0, 0))
        assert canvas.rgb[10, 10, 0] == pytest.approx(1.0)
        assert canvas.rgb[0, 0, 0] == pytest.approx(0.0)

    def test_triangle_contains_centroid(self):
        canvas = Canvas(30, 30, background=(0, 0, 0))
        canvas.triangle((0.1, 0.5), (0.9, 0.1), (0.9, 0.9), (0, 1, 0))
        assert canvas.rgb[18, 15, 1] == pytest.approx(1.0)

    def test_line_connects_endpoints(self):
        canvas = Canvas(20, 20, background=(0, 0, 0))
        canvas.line((0.5, 0.1), (0.5, 0.9), 0.1, (1, 1, 1))
        assert canvas.rgb[10, 10, 0] == pytest.approx(1.0)

    def test_alpha_blending(self):
        canvas = Canvas(10, 10, background=(0, 0, 0))
        canvas.rect(0, 0, 1, 1, (1, 1, 1), alpha=0.5)
        np.testing.assert_allclose(canvas.rgb[5, 5], 0.5)

    def test_vertical_gradient_monotone(self):
        canvas = Canvas(30, 10)
        canvas.vertical_gradient((0, 0, 0), (1, 1, 1), 0.0, 1.0)
        column = canvas.rgb[:, 5, 0]
        assert np.all(np.diff(column) >= -1e-9)
        assert column[0] < column[-1]

    def test_noise_changes_pixels_reproducibly(self):
        a = Canvas(16, 16)
        b = Canvas(16, 16)
        a.add_noise(np.random.default_rng(5), 0.05)
        b.add_noise(np.random.default_rng(5), 0.05)
        np.testing.assert_array_equal(a.rgb, b.rgb)

    def test_noise_zero_sigma_noop(self):
        canvas = Canvas(16, 16)
        before = canvas.rgb.copy()
        canvas.add_noise(np.random.default_rng(0), 0.0)
        np.testing.assert_array_equal(canvas.rgb, before)

    def test_values_stay_in_range(self):
        canvas = Canvas(16, 16, background=(0.95, 0.95, 0.95))
        canvas.add_noise(np.random.default_rng(1), 0.5)
        canvas.add_value_texture(np.random.default_rng(2), 4, 0.5)
        assert canvas.rgb.min() >= 0.0
        assert canvas.rgb.max() <= 1.0

    def test_smooth_reduces_variance(self):
        canvas = Canvas(32, 32)
        canvas.add_noise(np.random.default_rng(3), 0.2)
        before = canvas.rgb.var()
        canvas.smooth(2)
        assert canvas.rgb.var() < before

    def test_too_small_canvas_rejected(self):
        with pytest.raises(DatasetError):
            Canvas(4, 4)

    def test_invalid_gradient_band(self):
        with pytest.raises(DatasetError):
            Canvas(16, 16).vertical_gradient((0, 0, 0), (1, 1, 1), 0.8, 0.2)

    def test_invalid_ellipse(self):
        with pytest.raises(DatasetError):
            Canvas(16, 16).ellipse(0.5, 0.5, 0.0, 0.1, (1, 1, 1))


class TestHelpers:
    def test_jitter_within_bounds(self):
        rng = np.random.default_rng(0)
        for _ in range(100):
            value = jitter(rng, 0.5, 0.1)
            assert 0.4 <= value <= 0.6

    def test_jitter_color_in_unit_range(self):
        rng = np.random.default_rng(1)
        for _ in range(50):
            color = jitter_color(rng, (0.0, 0.5, 1.0), 0.3)
            assert all(0.0 <= c <= 1.0 for c in color)

    def test_category_rng_deterministic(self):
        a = category_rng(1, "waterfall", 3).uniform(size=4)
        b = category_rng(1, "waterfall", 3).uniform(size=4)
        np.testing.assert_array_equal(a, b)

    def test_category_rng_varies_with_inputs(self):
        base = category_rng(1, "waterfall", 3).uniform()
        assert category_rng(2, "waterfall", 3).uniform() != base
        assert category_rng(1, "sunset", 3).uniform() != base
        assert category_rng(1, "waterfall", 4).uniform() != base


class TestSceneRenderers:
    @pytest.mark.parametrize("category", SCENE_CATEGORIES)
    def test_renders_valid_rgb(self, category):
        rng = category_rng(0, category, 0)
        image = render_scene(category, rng, (48, 48))
        assert image.shape == (48, 48, 3)
        assert image.min() >= 0.0 and image.max() <= 1.0

    @pytest.mark.parametrize("category", SCENE_CATEGORIES)
    def test_not_constant(self, category):
        rng = category_rng(0, category, 1)
        image = render_scene(category, rng, (48, 48))
        assert image.var() > 1e-4

    def test_deterministic(self):
        a = render_scene("waterfall", category_rng(3, "waterfall", 2), (48, 48))
        b = render_scene("waterfall", category_rng(3, "waterfall", 2), (48, 48))
        np.testing.assert_array_equal(a, b)

    def test_instances_vary(self):
        a = render_scene("waterfall", category_rng(3, "waterfall", 0), (48, 48))
        b = render_scene("waterfall", category_rng(3, "waterfall", 1), (48, 48))
        assert np.abs(a - b).max() > 0.05

    def test_unknown_category(self):
        with pytest.raises(DatasetError):
            render_scene("desert", np.random.default_rng(0))


class TestObjectRenderers:
    @pytest.mark.parametrize("category", OBJECT_CATEGORIES)
    def test_renders_valid_rgb(self, category):
        rng = category_rng(0, category, 0)
        image = render_object(category, rng, (48, 48))
        assert image.shape == (48, 48, 3)
        assert image.min() >= 0.0 and image.max() <= 1.0
        assert image.var() > 1e-4  # the object breaks the uniform background

    def test_uniform_background_property(self):
        # Corners should be close to the background shade (objects centred).
        image = render_object("camera", category_rng(0, "camera", 0), (64, 64))
        corner = image[:6, :6].mean()
        assert corner > 0.75  # light background

    def test_nineteen_categories(self):
        assert len(OBJECT_CATEGORIES) == 19

    def test_unknown_category(self):
        with pytest.raises(DatasetError):
            render_object("spaceship", np.random.default_rng(0))


class TestSignals:
    def test_perfect_pair(self):
        a, b = perfectly_correlated_pair(0)
        assert correlation_coefficient(a, b) == pytest.approx(1.0)

    def test_uncorrelated_pair(self):
        a, b = uncorrelated_pair(0)
        assert correlation_coefficient(a, b) == pytest.approx(0.0, abs=1e-9)

    def test_inverse_pair(self):
        a, b = inversely_correlated_pair(0)
        assert correlation_coefficient(a, b) == pytest.approx(-1.0)

    def test_too_short_rejected(self):
        with pytest.raises(DatasetError):
            perfectly_correlated_pair(0, n_samples=2)


class TestLoaders:
    def test_scene_database_shape(self):
        database = build_scene_database(images_per_category=2, size=(48, 48))
        assert len(database) == 10
        assert set(database.categories()) == set(SCENE_CATEGORIES)

    def test_object_database_shape(self):
        database = build_object_database(images_per_category=2, size=(48, 48))
        assert len(database) == 38

    def test_paper_sizes_default(self):
        # Don't build them (slow); check the documented defaults.
        import inspect

        assert inspect.signature(build_scene_database).parameters[
            "images_per_category"
        ].default == 100
        assert inspect.signature(build_object_database).parameters[
            "images_per_category"
        ].default == 12

    def test_category_subset(self):
        database = build_scene_database(
            images_per_category=2, size=(48, 48), categories=("waterfall",)
        )
        assert database.categories() == ("waterfall",)

    def test_unknown_category_rejected(self):
        with pytest.raises(DatasetError):
            build_scene_database(images_per_category=2, categories=("desert",))

    def test_quick_database_kinds(self):
        scenes = quick_database("scenes", images_per_category=2, size=(48, 48))
        objects = quick_database("objects", images_per_category=2, size=(48, 48))
        assert len(scenes) == 10
        assert len(objects) == 38
        with pytest.raises(DatasetError):
            quick_database("videos")

    def test_ids_are_stable(self):
        database = build_scene_database(images_per_category=2, size=(48, 48))
        assert "waterfall-0000" in database
        assert "sunset-0001" in database

    def test_rgb_preserved_for_baseline(self):
        database = build_scene_database(images_per_category=1, size=(48, 48))
        record = database.record("waterfall-0000")
        assert record.image.rgb is not None
