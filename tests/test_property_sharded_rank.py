"""Property suite: sharded-pruned vs exhaustive vs loop ranking equivalence.

The sharded rank path's contract is *exact* pruning: for every corpus,
concept, shard partition, chunk size, exclusion set, category filter and
``top_k``, :class:`~repro.core.sharding.ShardedRanker` must produce the
same ordering as the exhaustive :class:`~repro.core.retrieval.Ranker` —
which in turn matches :func:`~repro.core.retrieval.rank_by_loop`.

Instance values, concept points and weights are drawn from *dyadic*
rationals (multiples of 1/4 within a few bits), so every weighted squared
distance is exactly representable in float64 no matter which kernel
computes it.  That makes exact distance ties — the hardest case for a
pruning cutoff, since a tied bag may still win on the id tie-break —
common rather than measure-zero, and makes cross-implementation
comparisons exact instead of tolerance-based.
"""

import numpy as np
import pytest

from repro.core.concept import LearnedConcept
from repro.core.retrieval import (
    PackedCorpus,
    Ranker,
    RetrievalCandidate,
    rank_by_loop,
)
from repro.core.sharding import ShardIndex, ShardedRanker

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

#: Dyadic grid: sums/products of a few of these stay exact in float64.
dyadic = st.integers(-8, 8).map(lambda v: v / 4.0)


@st.composite
def corpora(draw):
    """A small packed corpus with shuffled ids and frequent value ties."""
    n_bags = draw(st.integers(1, 12))
    n_dims = draw(st.integers(1, 3))
    order = draw(st.permutations(range(n_bags)))
    candidates = []
    for position in range(n_bags):
        n_instances = draw(st.integers(1, 3))
        values = draw(
            st.lists(
                dyadic,
                min_size=n_instances * n_dims,
                max_size=n_instances * n_dims,
            )
        )
        candidates.append(
            RetrievalCandidate(
                image_id=f"img-{order[position]:03d}",
                category=draw(st.sampled_from(["a", "b"])),
                instances=np.array(values).reshape(n_instances, n_dims),
            )
        )
    return PackedCorpus.from_candidates(candidates)


@st.composite
def concepts_for(draw, n_dims):
    t = np.array(draw(st.lists(dyadic, min_size=n_dims, max_size=n_dims)))
    w = np.array(
        draw(
            st.lists(
                st.sampled_from([0.0, 0.25, 0.5, 1.0, 2.0]),
                min_size=n_dims,
                max_size=n_dims,
            )
        )
    )
    return LearnedConcept(t=t, w=w, nll=0.0)


def assert_same_ranking(fast, slow):
    assert fast.image_ids == slow.image_ids
    assert fast.total_candidates == slow.total_candidates
    # Dyadic inputs: every path computes the exact same distances.
    np.testing.assert_array_equal(fast.distances, slow.distances)
    assert [e.category for e in fast] == [e.category for e in slow]


@settings(max_examples=60, deadline=None)
@given(data=st.data(), packed=corpora())
def test_sharded_matches_exhaustive_and_loop(data, packed):
    concept = data.draw(concepts_for(packed.n_dims))
    n_bags = packed.n_bags
    top_k = data.draw(
        st.sampled_from([1, min(3, n_bags), n_bags, n_bags + 5, None])
    )
    n_shards = data.draw(st.sampled_from([1, 2, n_bags]))  # incl. 1 bag/shard
    chunk_bags = data.draw(st.sampled_from([1, 2, 1024]))
    exclude = data.draw(st.sets(st.sampled_from(packed.image_ids)))
    category_filter = data.draw(st.sampled_from([None, "a"]))

    sharded = ShardedRanker(n_shards=n_shards, chunk_bags=chunk_bags).rank(
        concept, packed, top_k=top_k, exclude=exclude,
        category_filter=category_filter,
    )
    exhaustive = Ranker(auto_shard=False).rank(
        concept, packed, top_k=top_k, exclude=exclude,
        category_filter=category_filter,
    )
    assert_same_ranking(sharded, exhaustive)

    # The loop reference has no top_k/filter; compare against its prefix.
    survivors = [
        c for c in packed.candidates()
        if category_filter is None or c.category == category_filter
    ]
    loop = rank_by_loop(concept, survivors, exclude=exclude)
    kept = len(sharded)
    assert sharded.image_ids == loop.image_ids[:kept]
    np.testing.assert_array_equal(sharded.distances, loop.distances[:kept])


@settings(max_examples=40, deadline=None)
@given(data=st.data(), packed=corpora())
def test_auto_routed_ranker_is_exact(data, packed):
    concept = data.draw(concepts_for(packed.n_dims))
    top_k = data.draw(st.sampled_from([1, 2, packed.n_bags]))
    routed = Ranker(min_shard_bags=1).rank(concept, packed, top_k=top_k)
    exhaustive = Ranker(auto_shard=False).rank(concept, packed, top_k=top_k)
    assert_same_ranking(routed, exhaustive)


@settings(max_examples=30, deadline=None)
@given(data=st.data(), packed=corpora())
def test_lower_bounds_are_valid_and_exact_on_dyadic_grids(data, packed):
    concept = data.draw(concepts_for(packed.n_dims))
    index = ShardIndex.build(packed)
    bounds = index.lower_bounds(concept)
    exact = packed.min_distances(concept)
    # Dyadic arithmetic is exact, so the bound inequality holds exactly.
    assert np.all(bounds <= exact)


@settings(max_examples=20, deadline=None)
@given(data=st.data(), packed=corpora())
def test_threaded_scan_is_deterministic(data, packed):
    concept = data.draw(concepts_for(packed.n_dims))
    top_k = min(3, packed.n_bags)
    reference = ShardedRanker(n_shards=packed.n_bags, workers=1).rank(
        concept, packed, top_k=top_k
    )
    for _ in range(3):
        threaded = ShardedRanker(n_shards=packed.n_bags, workers=4).rank(
            concept, packed, top_k=top_k
        )
        assert threaded.image_ids == reference.image_ids
        np.testing.assert_array_equal(
            threaded.distances, reference.distances
        )


def test_mutation_invalidates_the_cached_index():
    """Adding an image rebuilds the packed view, so no stale index serves."""
    from repro.datasets.loader import quick_database
    from repro.imaging.features import FeatureConfig
    from repro.imaging.regions import region_family

    database = quick_database(
        "scenes", images_per_category=3, size=(48, 48), seed=5,
        feature_config=FeatureConfig(
            resolution=5, region_family=region_family("small9")
        ),
    )
    packed_before = database.packed()
    index_before = packed_before.shard_index(2)
    assert packed_before.cached_shard_index is index_before

    rng = np.random.default_rng(0)
    new_id = database.add_image(
        rng.uniform(0.0, 1.0, size=(48, 48)), "sunset"
    )
    packed_after = database.packed()
    assert packed_after is not packed_before
    assert packed_after.cached_shard_index is None  # fresh view, fresh index

    concept = LearnedConcept(
        t=rng.normal(size=packed_after.n_dims),
        w=rng.uniform(0.1, 1.0, packed_after.n_dims),
        nll=0.0,
    )
    routed = Ranker(min_shard_bags=1).rank(concept, packed_after, top_k=5)
    exhaustive = Ranker(auto_shard=False).rank(concept, packed_after, top_k=5)
    assert routed.image_ids == exhaustive.image_ids
    assert new_id in packed_after.image_ids
    assert packed_after.cached_shard_index is not None
