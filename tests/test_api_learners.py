"""Unit tests for the learner registry and the unified learner interface."""

import pytest

from repro.api.learners import (
    ConceptLearner,
    DiverseDensityLearner,
    EMDDLearner,
    Learner,
    MaronRatanLearner,
    RandomOrderModel,
    available_learners,
    make_learner,
    register_learner,
)
from repro.bags.bag import BagSet
from repro.errors import LearnerError, ReproError


class TestRegistry:
    def test_builtins_registered(self):
        names = available_learners()
        for name in ("dd", "diverse-density", "emdd", "maron-ratan",
                     "random", "global-correlation"):
            assert name in names

    def test_make_dd(self):
        learner = make_learner("dd", scheme="identical", max_iterations=20)
        assert isinstance(learner, DiverseDensityLearner)
        assert learner.config.scheme == "identical"

    def test_make_emdd(self):
        learner = make_learner("emdd", inner_scheme="identical")
        assert isinstance(learner, EMDDLearner)

    def test_unknown_name_raises_clean_repro_error(self):
        with pytest.raises(LearnerError, match="unknown learner"):
            make_learner("no-such-learner")
        with pytest.raises(ReproError):  # LearnerError derives from ReproError
            make_learner("no-such-learner")

    def test_unknown_name_lists_known(self):
        with pytest.raises(LearnerError, match="dd"):
            make_learner("no-such-learner")

    def test_bad_params_raise_learner_error(self):
        with pytest.raises(LearnerError, match="invalid parameters"):
            make_learner("dd", not_a_parameter=1)

    def test_register_and_resolve_custom(self):
        class NullLearner(Learner):
            name = "null"

            def fit(self, bag_set):
                return RandomOrderModel(0)

        register_learner("null-test", NullLearner, overwrite=True)
        try:
            assert isinstance(make_learner("null-test"), NullLearner)
        finally:
            from repro.api import learners as module
            module._REGISTRY.pop("null-test", None)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(LearnerError, match="already registered"):
            register_learner("dd", DiverseDensityLearner)

    def test_empty_name_rejected(self):
        with pytest.raises(LearnerError):
            register_learner("", DiverseDensityLearner)

    def test_factory_must_return_learner(self):
        register_learner("broken-test", lambda: object(), overwrite=True)
        try:
            with pytest.raises(LearnerError, match="not a Learner"):
                make_learner("broken-test")
        finally:
            from repro.api import learners as module
            module._REGISTRY.pop("broken-test", None)


@pytest.fixture()
def scene_bags(tiny_scene_db) -> BagSet:
    bag_set = BagSet()
    for image_id in tiny_scene_db.ids_in_category("waterfall")[:3]:
        bag_set.add(tiny_scene_db.bag_for(image_id, label=True))
    for image_id in tiny_scene_db.ids_in_category("field")[:3]:
        bag_set.add(tiny_scene_db.bag_for(image_id, label=False))
    return bag_set


class TestLearnerInterface:
    def test_dd_fit_produces_concept_model(self, scene_bags, tiny_scene_db):
        learner = make_learner("dd", scheme="identical", max_iterations=30, seed=1)
        model = learner.fit(scene_bags)
        assert model.concept is not None
        assert model.training is not None
        ranking = model.rank(tiny_scene_db.retrieval_candidates())
        assert len(ranking) == len(tiny_scene_db)

    def test_concept_learner_train_alias(self, scene_bags):
        learner = make_learner("dd", scheme="identical", max_iterations=30)
        training = learner.train(scene_bags)
        assert training.concept is not None  # FeedbackLoop compatibility

    def test_random_learner_is_seeded(self, scene_bags, tiny_scene_db):
        candidates = tiny_scene_db.retrieval_candidates()
        a = make_learner("random", seed=5).fit(scene_bags).rank(candidates)
        b = make_learner("random", seed=5).fit(scene_bags).rank(candidates)
        c = make_learner("random", seed=6).fit(scene_bags).rank(candidates)
        assert a.image_ids == b.image_ids
        assert a.image_ids != c.image_ids

    def test_global_correlation_requires_bind(self, scene_bags):
        learner = make_learner("global-correlation", resolution=6)
        with pytest.raises(LearnerError, match="bind"):
            learner.fit(scene_bags)

    def test_global_correlation_ranks(self, scene_bags, tiny_scene_db):
        learner = make_learner("global-correlation", resolution=6)
        learner.bind(tiny_scene_db)
        ranking = learner.fit(scene_bags).rank(tiny_scene_db.retrieval_candidates())
        assert len(ranking) == len(tiny_scene_db)
        assert list(ranking.distances) == sorted(ranking.distances)

    def test_maron_ratan_swaps_corpus(self, tiny_scene_db):
        learner = make_learner("maron-ratan", max_iterations=20, grid=4)
        assert isinstance(learner, MaronRatanLearner)
        corpus = learner.corpus(tiny_scene_db)
        assert corpus is not tiny_scene_db
        assert learner.corpus_key != make_learner("dd").corpus_key
        image_id = tiny_scene_db.image_ids[0]
        assert corpus.instances_for(image_id).shape[1] == 15  # SBN dims

    def test_exclude_respected(self, scene_bags, tiny_scene_db):
        learner = make_learner("dd", scheme="identical", max_iterations=30)
        model = learner.fit(scene_bags)
        skip = tiny_scene_db.image_ids[:4]
        ranking = model.rank(tiny_scene_db.retrieval_candidates(), exclude=skip)
        assert not set(skip) & set(ranking.image_ids)

    def test_concept_learner_is_abstract_over_trainers(self, scene_bags):
        dd = make_learner("dd", scheme="identical", max_iterations=20)
        emdd = make_learner("emdd", inner_scheme="identical")
        assert isinstance(dd, ConceptLearner) and isinstance(emdd, ConceptLearner)
        for learner in (dd, emdd):
            assert learner.fit(scene_bags).concept is not None
