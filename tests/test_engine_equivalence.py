"""Batched vs sequential training-engine equivalence.

The batched engine is a pure execution-strategy change: stepping all
restarts in lockstep must return *bit-identical* best concepts and
per-start values to running the same solver one restart at a time.  This
suite asserts that — property-based over random bag sets when `hypothesis`
is installed, plus deterministic coverage of the edge shapes the issue
calls out (single positive bag, stride-thinned starts, warm starts) and of
the restart-pruning and fallback behaviours that are batched-only.

Equivalence holds on the Armijo-family solver backends the batched engine
replicates (`armijo` for the unconstrained schemes, `projected` for the
inequality scheme); quasi-Newton backends (L-BFGS, SLSQP) follow different
trajectories by construction and stay on the sequential path.
"""

import numpy as np
import pytest

from repro.bags.bag import Bag, BagSet
from repro.core.diverse_density import (
    DiverseDensityTrainer,
    ExtraStart,
    TrainerConfig,
    TrainingResult,
)
from repro.core.emdd import EMDDConfig, EMDDTrainer
from repro.core.objective import BatchedDiverseDensityObjective
from repro.core.schemes import (
    AlphaHackScheme,
    IdenticalWeightsScheme,
    InequalityScheme,
    OriginalDDScheme,
    SchemeResult,
    WeightScheme,
)
from repro.errors import TrainingError
from tests.conftest import make_planted_bag_set

#: Scheme factories whose batched solver replicates the sequential one.
EQUIVALENT_SCHEMES = {
    "identical-armijo": lambda: IdenticalWeightsScheme(
        max_iterations=60, backend="armijo"
    ),
    "original-armijo": lambda: OriginalDDScheme(max_iterations=60, backend="armijo"),
    "alpha-hack": lambda: AlphaHackScheme(alpha=25.0, max_iterations=60),
    "inequality-projected": lambda: InequalityScheme(beta=0.5, max_iterations=60),
}


def random_bag_set(
    seed: int, n_dims: int, n_positive: int, n_negative: int, max_instances: int
) -> BagSet:
    """An arbitrary labelled bag set (no planted structure required)."""
    rng = np.random.default_rng(seed)
    bag_set = BagSet()
    for index in range(n_positive):
        count = int(rng.integers(1, max_instances + 1))
        bag_set.add(
            Bag(
                instances=rng.normal(0.0, 2.0, size=(count, n_dims)),
                label=True,
                bag_id=f"pos-{index}",
            )
        )
    for index in range(n_negative):
        count = int(rng.integers(1, max_instances + 1))
        bag_set.add(
            Bag(
                instances=rng.normal(1.0, 2.0, size=(count, n_dims)),
                label=False,
                bag_id=f"neg-{index}",
            )
        )
    return bag_set


def train_both(
    bag_set: BagSet,
    scheme: WeightScheme,
    stride: int = 1,
    subset: int | None = None,
    extra_starts: tuple[ExtraStart, ...] = (),
) -> tuple[TrainingResult, TrainingResult]:
    """The same configuration through both engines."""
    results = []
    for engine in ("batched", "sequential"):
        trainer = DiverseDensityTrainer(
            TrainerConfig(
                scheme=scheme,
                engine=engine,
                start_instance_stride=stride,
                start_bag_subset=subset,
            )
        )
        results.append(trainer.train(bag_set, extra_starts=extra_starts))
    return results[0], results[1]


def assert_bit_identical(batched: TrainingResult, sequential: TrainingResult) -> None:
    """Every observable of the two runs must match exactly."""
    assert batched.n_starts == sequential.n_starts
    for left, right in zip(batched.starts, sequential.starts):
        assert left.bag_id == right.bag_id
        assert left.instance_index == right.instance_index
        assert left.value == right.value  # bitwise, no tolerance
        assert left.n_iterations == right.n_iterations
        assert left.converged == right.converged
    assert batched.concept.nll == sequential.concept.nll
    assert np.array_equal(batched.concept.t, sequential.concept.t)
    assert np.array_equal(batched.concept.w, sequential.concept.w)
    assert batched.best_start.bag_id == sequential.best_start.bag_id
    assert batched.best_start.instance_index == sequential.best_start.instance_index


class TestEngineEquivalence:
    @pytest.mark.parametrize("scheme_name", sorted(EQUIVALENT_SCHEMES))
    def test_planted_problem(self, scheme_name):
        bag_set, _ = make_planted_bag_set(n_dims=4, seed=31)
        batched, sequential = train_both(bag_set, EQUIVALENT_SCHEMES[scheme_name]())
        assert_bit_identical(batched, sequential)

    @pytest.mark.parametrize("scheme_name", sorted(EQUIVALENT_SCHEMES))
    def test_single_positive_bag(self, scheme_name):
        bag_set = random_bag_set(
            seed=5, n_dims=3, n_positive=1, n_negative=2, max_instances=5
        )
        batched, sequential = train_both(bag_set, EQUIVALENT_SCHEMES[scheme_name]())
        assert_bit_identical(batched, sequential)

    @pytest.mark.parametrize("scheme_name", sorted(EQUIVALENT_SCHEMES))
    def test_stride_thinned_starts(self, scheme_name):
        bag_set = random_bag_set(
            seed=6, n_dims=4, n_positive=4, n_negative=3, max_instances=7
        )
        batched, sequential = train_both(
            bag_set, EQUIVALENT_SCHEMES[scheme_name](), stride=3
        )
        assert_bit_identical(batched, sequential)

    def test_start_bag_subset(self):
        bag_set = random_bag_set(
            seed=7, n_dims=3, n_positive=5, n_negative=2, max_instances=4
        )
        batched, sequential = train_both(
            bag_set, InequalityScheme(beta=0.5, max_iterations=60), subset=2
        )
        assert_bit_identical(batched, sequential)

    def test_warm_start_extra_restart(self):
        bag_set = random_bag_set(
            seed=8, n_dims=3, n_positive=3, n_negative=2, max_instances=4
        )
        extra = (ExtraStart(t=np.zeros(3), w=np.full(3, 0.5)),)
        batched, sequential = train_both(
            bag_set, InequalityScheme(beta=0.5, max_iterations=60), extra_starts=extra
        )
        assert_bit_identical(batched, sequential)
        assert batched.starts[-1].bag_id == "warm-start"
        assert batched.starts[-1].instance_index == -1

    def test_no_negative_bags(self):
        bag_set = random_bag_set(
            seed=9, n_dims=3, n_positive=3, n_negative=0, max_instances=4
        )
        batched, sequential = train_both(
            bag_set, IdenticalWeightsScheme(max_iterations=60, backend="armijo")
        )
        assert_bit_identical(batched, sequential)


class TestEMDDEngineEquivalence:
    @pytest.mark.parametrize("inner_scheme", ["identical", "inequality"])
    def test_bit_identical(self, inner_scheme):
        # The M-steps run per restart in both engines, so EM-DD equivalence
        # holds even on the default L-BFGS inner backend.
        bag_set, _ = make_planted_bag_set(n_positive=4, seed=33)
        results = []
        for engine in ("batched", "sequential"):
            trainer = EMDDTrainer(
                EMDDConfig(inner_scheme=inner_scheme, engine=engine)
            )
            results.append(trainer.train(bag_set))
        assert_bit_identical(results[0], results[1])


class TestObjectiveSliceStability:
    def test_subset_rows_bitwise_equal(self):
        # The foundation of engine equivalence: evaluating any subset of
        # restarts must reproduce the corresponding rows of the full batch.
        bag_set = random_bag_set(
            seed=11, n_dims=5, n_positive=4, n_negative=3, max_instances=6
        )
        objective = BatchedDiverseDensityObjective(bag_set)
        rng = np.random.default_rng(12)
        t = rng.normal(size=(9, 5))
        w = rng.uniform(0.1, 1.0, size=(9, 5))
        values, grad_t, grad_w = objective.value_and_grad(t, w)
        for rows in ([0], [8], [1, 4, 7], [0, 2, 3, 5, 8]):
            sel = np.asarray(rows)
            sub_values, sub_gt, sub_gw = objective.value_and_grad(t[sel], w[sel])
            assert np.array_equal(sub_values, values[sel])
            assert np.array_equal(sub_gt, grad_t[sel])
            assert np.array_equal(sub_gw, grad_w[sel])


class TestRestartPruning:
    def make_result(self, margin):
        bag_set, _ = make_planted_bag_set(n_positive=4, seed=35)
        trainer = DiverseDensityTrainer(
            TrainerConfig(
                scheme=IdenticalWeightsScheme(max_iterations=100, backend="armijo"),
                engine="batched",
                restart_prune_margin=margin,
            )
        )
        return trainer.train(bag_set)

    def test_margin_prunes_and_is_recorded(self):
        pruned = self.make_result(margin=0.0)
        if pruned.n_starts_pruned == 0:
            pytest.skip("no restart dominated on this problem")
        assert pruned.n_starts_pruned == sum(1 for r in pruned.starts if r.pruned)
        assert pruned.concept.metadata["n_starts_pruned"] == pruned.n_starts_pruned
        for record in pruned.starts:
            if record.pruned:
                assert not record.converged

    def test_best_start_never_pruned(self):
        pruned = self.make_result(margin=0.0)
        assert not pruned.best_start.pruned

    def test_huge_margin_matches_unpruned(self):
        unpruned = self.make_result(margin=None)
        slack = self.make_result(margin=1e12)
        assert slack.n_starts_pruned == 0
        assert_bit_identical(unpruned, slack)

    def test_pruning_speeds_up_iterations(self):
        unpruned = self.make_result(margin=None)
        pruned = self.make_result(margin=0.0)
        total = lambda result: sum(r.n_iterations for r in result.starts)  # noqa: E731
        assert total(pruned) <= total(unpruned)

    def test_sequential_engine_ignores_margin(self):
        bag_set, _ = make_planted_bag_set(n_positive=3, seed=36)
        config = TrainerConfig(
            scheme="identical", engine="sequential", restart_prune_margin=0.0
        )
        result = DiverseDensityTrainer(config).train(bag_set)
        assert result.n_starts_pruned == 0

    def test_invalid_margin_rejected(self):
        with pytest.raises(TrainingError):
            TrainerConfig(restart_prune_margin=-1.0)

    def test_invalid_engine_rejected(self):
        with pytest.raises(TrainingError):
            TrainerConfig(engine="warp-drive")
        with pytest.raises(TrainingError):
            EMDDConfig(engine="warp-drive")


class _ShiftedIdenticalScheme(WeightScheme):
    """A custom scheme the batched engine cannot recognise."""

    name = "custom-shifted"

    def optimize(self, objective, t0, w0=None) -> SchemeResult:
        ones = np.ones(objective.n_dims)
        t = np.asarray(t0, dtype=np.float64).reshape(-1)
        return SchemeResult(
            t=t, w=ones, value=objective.value(t, ones), n_iterations=0, converged=True
        )


class TestCustomSchemeFallback:
    def test_batched_engine_falls_back_to_sequential(self):
        bag_set, _ = make_planted_bag_set(n_positive=2, seed=37)
        scheme = _ShiftedIdenticalScheme()
        batched = DiverseDensityTrainer(
            TrainerConfig(scheme=scheme, engine="batched")
        ).train(bag_set)
        sequential = DiverseDensityTrainer(
            TrainerConfig(scheme=scheme, engine="sequential")
        ).train(bag_set)
        assert_bit_identical(batched, sequential)
        assert batched.concept.metadata["engine"] == "sequential"

    @pytest.mark.parametrize(
        "scheme_factory",
        [
            lambda: IdenticalWeightsScheme(max_iterations=60, backend="lbfgs"),
            lambda: OriginalDDScheme(max_iterations=60, backend="lbfgs"),
            lambda: InequalityScheme(beta=0.5, max_iterations=40, backend="slsqp"),
        ],
        ids=["identical-lbfgs", "original-lbfgs", "inequality-slsqp"],
    )
    def test_quasi_newton_backends_fall_back(self, scheme_factory):
        # The lockstep engine only replicates Armijo-family solvers; a
        # quasi-Newton backend must keep its sequential trajectory instead
        # of being silently swapped for a different optimiser.
        bag_set, _ = make_planted_bag_set(n_positive=3, seed=38)
        batched, sequential = train_both(bag_set, scheme_factory())
        assert_bit_identical(batched, sequential)
        assert batched.concept.metadata["engine"] == "sequential"

    def test_armijo_backend_uses_batched_engine(self):
        bag_set, _ = make_planted_bag_set(n_positive=2, seed=39)
        result = DiverseDensityTrainer(
            TrainerConfig(
                scheme=IdenticalWeightsScheme(max_iterations=60, backend="armijo"),
                engine="batched",
            )
        ).train(bag_set)
        assert result.concept.metadata["engine"] == "batched"


# --------------------------------------------------------------------- #
# Property-based sweep (skipped cleanly when hypothesis is absent)       #
# --------------------------------------------------------------------- #

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_dims=st.integers(min_value=1, max_value=6),
    n_positive=st.integers(min_value=1, max_value=4),
    n_negative=st.integers(min_value=0, max_value=3),
    max_instances=st.integers(min_value=1, max_value=6),
    stride=st.integers(min_value=1, max_value=3),
    scheme_name=st.sampled_from(sorted(EQUIVALENT_SCHEMES)),
)
def test_property_engines_bit_identical(
    seed, n_dims, n_positive, n_negative, max_instances, stride, scheme_name
):
    bag_set = random_bag_set(seed, n_dims, n_positive, n_negative, max_instances)
    batched, sequential = train_both(
        bag_set, EQUIVALENT_SCHEMES[scheme_name](), stride=stride
    )
    assert_bit_identical(batched, sequential)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_dims=st.integers(min_value=1, max_value=6),
    batch=st.integers(min_value=1, max_value=12),
)
def test_property_objective_slice_stable(seed, n_dims, batch):
    rng = np.random.default_rng(seed)
    bag_set = random_bag_set(seed + 1, n_dims, 3, 2, 5)
    objective = BatchedDiverseDensityObjective(bag_set)
    t = rng.normal(size=(batch, n_dims))
    w = rng.uniform(0.0, 1.5, size=(batch, n_dims))
    values, grad_t, grad_w = objective.value_and_grad(t, w)
    row = int(rng.integers(0, batch))
    sub_values, sub_gt, sub_gw = objective.value_and_grad(
        t[row : row + 1], w[row : row + 1]
    )
    assert sub_values[0] == values[row]
    assert np.array_equal(sub_gt[0], grad_t[row])
    assert np.array_equal(sub_gw[0], grad_w[row])
