"""Unit tests for LearnedConcept (repro.core.concept)."""

import numpy as np
import pytest

from repro.bags.bag import Bag
from repro.core.concept import LearnedConcept
from repro.errors import TrainingError


def make_concept(n_dims: int = 4) -> LearnedConcept:
    return LearnedConcept(
        t=np.linspace(-1, 1, n_dims),
        w=np.ones(n_dims),
        nll=1.5,
        scheme="identical",
        metadata={"n_starts": 3},
    )


class TestValidation:
    def test_basic(self):
        concept = make_concept()
        assert concept.n_dims == 4
        assert concept.nll == pytest.approx(1.5)

    def test_mismatched_sizes_rejected(self):
        with pytest.raises(TrainingError):
            LearnedConcept(t=np.zeros(3), w=np.ones(4), nll=0.0)

    def test_empty_rejected(self):
        with pytest.raises(TrainingError):
            LearnedConcept(t=np.array([]), w=np.array([]), nll=0.0)

    def test_negative_weights_rejected(self):
        with pytest.raises(TrainingError):
            LearnedConcept(t=np.zeros(2), w=np.array([1.0, -0.5]), nll=0.0)

    def test_nan_rejected(self):
        with pytest.raises(TrainingError):
            LearnedConcept(t=np.array([np.nan, 0.0]), w=np.ones(2), nll=0.0)


class TestScoring:
    def test_instance_distances(self):
        concept = LearnedConcept(
            t=np.zeros(2), w=np.array([1.0, 2.0]), nll=0.0
        )
        instances = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
        distances = concept.instance_distances(instances)
        np.testing.assert_allclose(distances, [1.0, 2.0, 3.0])

    def test_bag_distance_is_min(self):
        concept = LearnedConcept(t=np.zeros(2), w=np.ones(2), nll=0.0)
        bag = Bag(instances=np.array([[3.0, 0.0], [1.0, 0.0], [2.0, 2.0]]), label=True)
        assert concept.bag_distance(bag) == pytest.approx(1.0)

    def test_bag_distance_accepts_raw_matrix(self):
        concept = LearnedConcept(t=np.zeros(2), w=np.ones(2), nll=0.0)
        assert concept.bag_distance(np.array([[0.5, 0.0]])) == pytest.approx(0.25)

    def test_best_instance_index(self):
        concept = LearnedConcept(t=np.zeros(2), w=np.ones(2), nll=0.0)
        instances = np.array([[3.0, 0.0], [0.1, 0.0], [2.0, 2.0]])
        assert concept.best_instance(instances) == 1

    def test_bag_probability_range(self):
        concept = make_concept()
        rng = np.random.default_rng(0)
        for _ in range(10):
            bag = rng.normal(size=(5, 4))
            p = concept.bag_probability(bag)
            assert 0.0 <= p <= 1.0

    def test_bag_probability_near_one_on_concept(self):
        concept = make_concept()
        bag = np.vstack([concept.t, concept.t + 10.0])
        assert concept.bag_probability(bag) > 0.99

    def test_bag_probability_near_zero_far_away(self):
        concept = make_concept()
        bag = np.full((3, 4), 100.0)
        assert concept.bag_probability(bag) < 1e-6

    def test_dimension_mismatch_rejected(self):
        concept = make_concept()
        with pytest.raises(TrainingError):
            concept.instance_distances(np.zeros((2, 5)))

    def test_1d_instance_promoted(self):
        concept = make_concept()
        distances = concept.instance_distances(concept.t)
        assert distances.shape == (1,)
        assert distances[0] == pytest.approx(0.0)


class TestWeightProfile:
    def test_flat_weights(self):
        concept = make_concept()
        profile = concept.weight_profile()
        assert profile.fraction_near_zero == pytest.approx(0.0)
        assert profile.entropy == pytest.approx(1.0)
        assert profile.mean == pytest.approx(1.0)

    def test_spiked_weights(self):
        w = np.zeros(100)
        w[3] = 5.0
        concept = LearnedConcept(t=np.zeros(100), w=w, nll=0.0)
        profile = concept.weight_profile()
        assert profile.fraction_near_zero == pytest.approx(0.99)
        assert profile.entropy == pytest.approx(0.0)
        assert profile.max == pytest.approx(5.0)

    def test_all_zero_weights(self):
        concept = LearnedConcept(t=np.zeros(4), w=np.zeros(4), nll=0.0)
        profile = concept.weight_profile()
        assert profile.fraction_near_zero == pytest.approx(1.0)
        assert profile.total == pytest.approx(0.0)

    def test_entropy_monotone_in_concentration(self):
        even = LearnedConcept(t=np.zeros(4), w=np.ones(4), nll=0.0)
        skewed = LearnedConcept(
            t=np.zeros(4), w=np.array([10.0, 0.1, 0.1, 0.1]), nll=0.0
        )
        assert even.weight_profile().entropy > skewed.weight_profile().entropy


class TestMatrices:
    def test_square_reshape(self):
        concept = LearnedConcept(t=np.arange(9.0), w=np.ones(9), nll=0.0)
        t_matrix, w_matrix = concept.as_matrices()
        assert t_matrix.shape == (3, 3)
        assert w_matrix.shape == (3, 3)
        assert t_matrix[1, 2] == pytest.approx(5.0)

    def test_explicit_resolution(self):
        concept = LearnedConcept(t=np.arange(9.0), w=np.ones(9), nll=0.0)
        t_matrix, _ = concept.as_matrices(3)
        assert t_matrix.shape == (3, 3)

    def test_non_square_rejected(self):
        concept = LearnedConcept(t=np.arange(8.0), w=np.ones(8), nll=0.0)
        with pytest.raises(TrainingError):
            concept.as_matrices()

    def test_wrong_resolution_rejected(self):
        concept = LearnedConcept(t=np.arange(9.0), w=np.ones(9), nll=0.0)
        with pytest.raises(TrainingError):
            concept.as_matrices(4)


class TestSerialisation:
    def test_roundtrip(self):
        concept = make_concept()
        restored = LearnedConcept.from_dict(concept.to_dict())
        np.testing.assert_allclose(restored.t, concept.t)
        np.testing.assert_allclose(restored.w, concept.w)
        assert restored.nll == pytest.approx(concept.nll)
        assert restored.scheme == concept.scheme
        assert restored.metadata == concept.metadata

    def test_missing_key_rejected(self):
        with pytest.raises(TrainingError):
            LearnedConcept.from_dict({"t": [1.0], "w": [1.0]})

    def test_dict_is_json_compatible(self):
        import json

        payload = make_concept().to_dict()
        assert json.loads(json.dumps(payload)) == payload
