"""Unit tests for the Section 3.4 normalisation and its Claim."""

import numpy as np
import pytest

from repro.errors import FeatureError
from repro.imaging.correlation import correlation_coefficient, weighted_correlation
from repro.imaging.transform import (
    correlation_from_distance,
    distance_from_correlation,
    normalize_feature,
    normalize_features,
    weighted_squared_distance,
    weighted_std,
)


class TestWeightedStd:
    def test_unit_weights_match_population_std(self):
        x = np.random.default_rng(0).normal(size=30)
        assert weighted_std(x) == pytest.approx(float(x.std()))

    def test_scaling_weights_scales_std(self):
        x = np.random.default_rng(1).normal(size=30)
        w = np.random.default_rng(2).uniform(0.5, 2.0, size=30)
        assert weighted_std(x, 4 * w) == pytest.approx(2 * weighted_std(x, w))

    def test_rejects_short_vectors(self):
        with pytest.raises(FeatureError):
            weighted_std(np.array([1.0]))

    def test_rejects_negative_weights(self):
        with pytest.raises(FeatureError):
            weighted_std(np.arange(5.0), np.array([1, 1, -1, 1, 1.0]))


class TestNormalizeFeature:
    def test_zero_mean(self):
        x = np.random.default_rng(3).normal(3.0, 2.0, size=40)
        assert normalize_feature(x).mean() == pytest.approx(0.0, abs=1e-12)

    def test_unit_weighted_norm_lemma(self):
        # The Lemma of Section 3.4: sum_k w_k B_k^2 = n.
        rng = np.random.default_rng(4)
        x = rng.normal(size=25)
        w = rng.uniform(0.1, 2.0, size=25)
        b = normalize_feature(x, w)
        assert float(w @ (b * b)) == pytest.approx(25.0)

    def test_unit_norm_with_unit_weights(self):
        x = np.random.default_rng(5).normal(size=16)
        b = normalize_feature(x)
        assert float(b @ b) == pytest.approx(16.0)

    def test_constant_raises(self):
        with pytest.raises(FeatureError):
            normalize_feature(np.full(10, 3.3))

    def test_idempotent_up_to_nothing(self):
        # Normalising a normalised vector leaves it unchanged.
        x = np.random.default_rng(6).normal(size=20)
        b = normalize_feature(x)
        np.testing.assert_allclose(normalize_feature(b), b, atol=1e-12)

    def test_scale_invariance(self):
        x = np.random.default_rng(7).normal(size=20)
        np.testing.assert_allclose(
            normalize_feature(x), normalize_feature(5 * x + 2), atol=1e-10
        )


class TestNormalizeFeatures:
    def test_matches_rowwise(self):
        data = np.random.default_rng(8).normal(size=(6, 15))
        batch = normalize_features(data)
        for row_index in range(6):
            np.testing.assert_allclose(
                batch[row_index], normalize_feature(data[row_index]), atol=1e-12
            )

    def test_constant_row_raises(self):
        data = np.random.default_rng(9).normal(size=(3, 8))
        data[2] = 1.0
        with pytest.raises(FeatureError):
            normalize_features(data)

    def test_rejects_1d(self):
        with pytest.raises(FeatureError):
            normalize_features(np.zeros(5))


class TestClaim:
    """The Section 3.4 Claim: distance on B orders pairs like correlation on A."""

    def test_distance_correlation_identity_unit_weights(self):
        rng = np.random.default_rng(10)
        a1, a2 = rng.normal(size=30), rng.normal(size=30)
        b1, b2 = normalize_feature(a1), normalize_feature(a2)
        distance = weighted_squared_distance(b1, b2)
        corr = correlation_coefficient(a1, a2)
        # ||B1 - B2||^2 = 2n - 2n Corr(A1, A2)
        assert distance == pytest.approx(2 * 30 * (1 - corr), rel=1e-9)

    def test_distance_correlation_identity_weighted(self):
        rng = np.random.default_rng(11)
        n = 24
        a1, a2 = rng.normal(size=n), rng.normal(size=n)
        w = rng.uniform(0.1, 2.0, size=n)
        b1 = normalize_feature(a1, w)
        b2 = normalize_feature(a2, w)
        distance = weighted_squared_distance(b1, b2, w)
        corr = weighted_correlation(a1, a2, w)
        assert distance == pytest.approx(2 * n * (1 - corr), rel=1e-9)

    def test_ordering_equivalence(self):
        rng = np.random.default_rng(12)
        n = 20
        vectors = rng.normal(size=(8, n))
        normalized = normalize_features(vectors)
        pairs = [(i, j) for i in range(8) for j in range(i + 1, 8)]
        corrs = [correlation_coefficient(vectors[i], vectors[j]) for i, j in pairs]
        dists = [
            weighted_squared_distance(normalized[i], normalized[j]) for i, j in pairs
        ]
        # Higher correlation <=> smaller distance: rankings are reversed.
        assert np.argsort(corrs).tolist() == np.argsort(dists)[::-1].tolist()


class TestConversions:
    def test_roundtrip(self):
        for corr in (-1.0, -0.3, 0.0, 0.42, 1.0):
            distance = distance_from_correlation(corr, 50)
            assert correlation_from_distance(distance, 50) == pytest.approx(corr)

    def test_perfect_correlation_zero_distance(self):
        assert distance_from_correlation(1.0, 100) == pytest.approx(0.0)

    def test_inverse_correlation_max_distance(self):
        assert distance_from_correlation(-1.0, 100) == pytest.approx(400.0)

    def test_invalid_correlation_raises(self):
        with pytest.raises(FeatureError):
            distance_from_correlation(1.5, 10)

    def test_negative_distance_raises(self):
        with pytest.raises(FeatureError):
            correlation_from_distance(-1.0, 10)

    def test_tiny_dims_raise(self):
        with pytest.raises(FeatureError):
            distance_from_correlation(0.5, 1)


class TestWeightedSquaredDistance:
    def test_zero_for_identical(self):
        x = np.random.default_rng(13).normal(size=10)
        assert weighted_squared_distance(x, x) == pytest.approx(0.0)

    def test_matches_manual(self):
        x = np.array([1.0, 2.0, 3.0])
        y = np.array([0.0, 0.0, 0.0])
        w = np.array([1.0, 2.0, 0.5])
        assert weighted_squared_distance(x, y, w) == pytest.approx(1 + 8 + 4.5)

    def test_size_mismatch_raises(self):
        with pytest.raises(FeatureError):
            weighted_squared_distance(np.zeros(3), np.zeros(4))
