"""Unit tests for the Chapter-5 RGB feature variant."""

import numpy as np
import pytest

from repro.core.diverse_density import DiverseDensityTrainer, TrainerConfig
from repro.core.feedback import FeedbackLoop, select_examples
from repro.errors import DatabaseError, FeatureError
from repro.imaging.color_features import (
    RgbFeatureExtractor,
    RgbRegionCorpus,
    extract_rgb_by_loop,
)
from repro.imaging.features import FeatureConfig
from repro.imaging.regions import region_family


def rgb_image(seed: int = 0, size: int = 48) -> np.ndarray:
    return np.random.default_rng(seed).uniform(0.1, 0.9, size=(size, size, 3))


def small_config() -> FeatureConfig:
    return FeatureConfig(resolution=5, region_family=region_family("small9"))


class TestRgbFeatureExtractor:
    def test_tripled_dimensionality(self):
        extractor = RgbFeatureExtractor(small_config())
        instances = extractor.extract(rgb_image())
        assert instances.shape == (18, 75)  # 9 regions x 2 mirrors, 3 * 25 dims
        assert extractor.n_dims == 75

    def test_channel_blocks_normalised_independently(self):
        extractor = RgbFeatureExtractor(small_config())
        instances = extractor.extract(rgb_image(1))
        for block in range(3):
            chunk = instances[0, block * 25 : (block + 1) * 25]
            assert chunk.mean() == pytest.approx(0.0, abs=1e-10)
            assert (chunk**2).sum() == pytest.approx(25.0, rel=1e-9)

    def test_rejects_gray(self):
        with pytest.raises(FeatureError):
            RgbFeatureExtractor(small_config()).extract(np.zeros((32, 32)))

    def test_constant_image_rejected(self):
        with pytest.raises(FeatureError):
            RgbFeatureExtractor(small_config()).extract(np.full((32, 32, 3), 0.5))

    def test_channel_information_preserved(self):
        # Two images identical in gray but different in colour must produce
        # different RGB features (the whole point of the variant).
        base = np.zeros((32, 32, 3))
        base[:16, :, 0] = 0.9  # red top
        base[16:, :, 1] = 0.9
        swapped = base[..., [1, 0, 2]]
        rng = np.random.default_rng(3)
        base += rng.uniform(0, 0.01, base.shape)
        swapped += rng.uniform(0, 0.01, swapped.shape)
        extractor = RgbFeatureExtractor(small_config())
        a = extractor.extract(np.clip(base, 0, 1))
        b = extractor.extract(np.clip(swapped, 0, 1))
        assert np.abs(a[0] - b[0]).max() > 0.5

    def test_deterministic(self):
        extractor = RgbFeatureExtractor(small_config())
        np.testing.assert_array_equal(
            extractor.extract(rgb_image(4)), extractor.extract(rgb_image(4))
        )


class TestBatchedEqualsLoop:
    """The channel-batched extractor must equal the per-channel loop exactly."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_feature_vectors_identical(self, seed):
        image = rgb_image(seed, size=48 + seed)
        config = small_config()
        np.testing.assert_array_equal(
            RgbFeatureExtractor(config).extract(image),
            extract_rgb_by_loop(image, config),
        )

    def test_identical_without_mirrors(self):
        config = FeatureConfig(
            resolution=6, region_family=region_family("small9"),
            include_mirrors=False,
        )
        image = rgb_image(9)
        np.testing.assert_array_equal(
            RgbFeatureExtractor(config).extract(image),
            extract_rgb_by_loop(image, config),
        )

    def test_identical_under_default_config(self):
        image = np.random.default_rng(11).uniform(0.05, 0.95, size=(64, 80, 3))
        np.testing.assert_array_equal(
            RgbFeatureExtractor().extract(image),
            extract_rgb_by_loop(image),
        )

    def test_variance_gating_decisions_agree(self):
        # Structure in one corner only: low-variance regions must be
        # dropped by both paths, and the survivors must match exactly.
        rng = np.random.default_rng(21)
        image = np.full((40, 40, 3), 0.5)
        image += rng.uniform(0, 1e-3, image.shape)  # sub-threshold noise
        image[:20, :20, :] = rng.uniform(0, 1, (20, 20, 3))
        config = small_config()
        batched = RgbFeatureExtractor(config).extract(image)
        looped = extract_rgb_by_loop(image, config)
        np.testing.assert_array_equal(batched, looped)
        # The gate actually fired: fewer instances than the full family.
        assert batched.shape[0] < 2 * len(config.region_family)

    def test_loop_reference_rejects_gray(self):
        with pytest.raises(FeatureError):
            extract_rgb_by_loop(np.zeros((32, 32)), small_config())


class TestRgbRegionCorpus:
    def test_serves_bags_and_runs_feedback(self, tiny_scene_db):
        corpus = RgbRegionCorpus(tiny_scene_db, small_config())
        ids = tiny_scene_db.image_ids
        instances = corpus.instances_for(ids[0])
        assert instances.shape[1] == 75
        assert corpus.instances_for(ids[0]) is instances  # cached

        potential = [i for i in ids if int(i.split("-")[1]) < 4]
        test = [i for i in ids if int(i.split("-")[1]) >= 4]
        selection = select_examples(corpus, potential, "sunset", 2, 2, seed=0)
        loop = FeedbackLoop(
            corpus=corpus,
            trainer=DiverseDensityTrainer(
                TrainerConfig(scheme="identical", max_iterations=40)
            ),
            target_category="sunset",
            potential_ids=potential,
            test_ids=test,
            rounds=2,
            false_positives_per_round=2,
        )
        outcome = loop.run(selection)
        assert len(outcome.test_ranking) > 0

    def test_category_delegation(self, tiny_scene_db):
        corpus = RgbRegionCorpus(tiny_scene_db, small_config())
        image_id = tiny_scene_db.image_ids[0]
        assert corpus.category_of(image_id) == tiny_scene_db.category_of(image_id)

    def test_gray_only_database_rejected(self):
        from repro.database.store import ImageDatabase

        database = ImageDatabase()
        database.add_image(
            np.random.default_rng(0).uniform(0.1, 0.9, (32, 32)), "gray", "g-0"
        )
        corpus = RgbRegionCorpus(database, small_config())
        with pytest.raises(DatabaseError):
            corpus.instances_for("g-0")
