"""Unit tests for the sharded corpus store: round trips and typed failures.

The failure-path tests are the important half: a corrupted, truncated or
tampered corpus must raise :class:`~repro.errors.DatasetError` — a short
corpus silently served would poison every experiment downstream.
"""

import json

import numpy as np
import pytest

from repro.datasets.synth import (
    MANIFEST_NAME,
    PARTIAL_MANIFEST_NAME,
    STORE_VERSION,
    ScenarioConfig,
    ShardedCorpusReader,
    ShardedCorpusWriter,
    corpus_from_config,
    generate_corpus,
    load_packed_corpus,
    save_packed_corpus,
    shard_filename,
)
from repro.errors import DatasetError


def tiny_config(**overrides) -> ScenarioConfig:
    defaults = dict(
        name="store-test",
        mode="feature",
        categories=("alpha", "beta"),
        bags_per_category=6,
        feature_dims=4,
        instances_per_bag=3,
    )
    defaults.update(overrides)
    return ScenarioConfig(**defaults)


@pytest.fixture()
def corpus_dir(tmp_path):
    """A generated 12-bag corpus in 3 shards."""
    directory = tmp_path / "corpus"
    generate_corpus(tiny_config(), directory, shard_size=4)
    return directory


def _edit_manifest(directory, mutate):
    path = directory / MANIFEST_NAME
    payload = json.loads(path.read_text())
    mutate(payload)
    path.write_text(json.dumps(payload))


class TestWriter:
    def test_round_trip_through_reader(self, tmp_path):
        writer = ShardedCorpusWriter(tmp_path / "c", shard_size=2)
        rng = np.random.default_rng(0)
        bags = [(f"bag-{i}", "cat", rng.normal(size=(3, 4))) for i in range(5)]
        for bag_id, category, instances in bags:
            writer.append(bag_id, category, instances)
        writer.finalize()
        reader = ShardedCorpusReader(tmp_path / "c")
        assert reader.n_shards == 3  # 2 + 2 + 1
        packed = reader.packed()
        assert packed.n_bags == 5
        assert list(packed.image_ids) == [b[0] for b in bags]
        np.testing.assert_array_equal(
            packed.instances, np.vstack([b[2] for b in bags])
        )

    def test_buffer_never_exceeds_shard_size(self, tmp_path):
        writer = ShardedCorpusWriter(tmp_path / "c", shard_size=3)
        for i in range(20):
            writer.append(f"bag-{i}", "cat", np.zeros((2, 4)))
        writer.finalize()
        assert writer.max_buffered_bags <= 3
        assert writer.max_buffered_instances <= 3 * 2

    def test_rejects_bad_instances(self, tmp_path):
        writer = ShardedCorpusWriter(tmp_path / "c")
        with pytest.raises(DatasetError, match="non-empty 2-D"):
            writer.append("bag", "cat", np.zeros(4))
        with pytest.raises(DatasetError, match="non-empty 2-D"):
            writer.append("bag", "cat", np.zeros((0, 4)))

    def test_rejects_append_after_finalize(self, tmp_path):
        writer = ShardedCorpusWriter(tmp_path / "c")
        writer.append("bag", "cat", np.zeros((1, 4)))
        writer.finalize()
        with pytest.raises(DatasetError, match="finalized"):
            writer.append("bag2", "cat", np.zeros((1, 4)))

    def test_refuses_empty_finalize(self, tmp_path):
        with pytest.raises(DatasetError, match="empty corpus"):
            ShardedCorpusWriter(tmp_path / "c").finalize()

    def test_refuses_mixed_dims(self, tmp_path):
        writer = ShardedCorpusWriter(tmp_path / "c", shard_size=1)
        writer.append("a", "cat", np.zeros((1, 4)))
        writer.append("b", "cat", np.zeros((1, 5)))
        with pytest.raises(DatasetError, match="dimensionality"):
            writer.finalize()

    def test_rejects_adopt_mid_shard(self, tmp_path):
        writer = ShardedCorpusWriter(tmp_path / "c", shard_size=4)
        writer.append("bag", "cat", np.zeros((1, 4)))
        with pytest.raises(DatasetError, match="buffered"):
            writer.adopt_shard({"file": "shard-00000.npz"})

    def test_rejects_bad_shard_size(self, tmp_path):
        with pytest.raises(DatasetError, match="shard_size"):
            ShardedCorpusWriter(tmp_path / "c", shard_size=0)

    def test_partial_manifest_removed_on_finalize(self, tmp_path):
        writer = ShardedCorpusWriter(tmp_path / "c", shard_size=1)
        writer.append("bag", "cat", np.zeros((1, 4)))
        assert (tmp_path / "c" / PARTIAL_MANIFEST_NAME).exists()
        writer.finalize()
        assert not (tmp_path / "c" / PARTIAL_MANIFEST_NAME).exists()
        assert (tmp_path / "c" / MANIFEST_NAME).exists()


class TestReaderFailures:
    def test_missing_directory(self, tmp_path):
        with pytest.raises(DatasetError, match="does not exist"):
            ShardedCorpusReader(tmp_path / "nowhere")

    def test_directory_without_manifest(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(DatasetError, match="no corpus manifest"):
            ShardedCorpusReader(tmp_path / "empty")

    def test_partial_only_directory_reports_incomplete(self, corpus_dir):
        (corpus_dir / MANIFEST_NAME).rename(corpus_dir / PARTIAL_MANIFEST_NAME)
        with pytest.raises(DatasetError, match="incomplete"):
            ShardedCorpusReader(corpus_dir)

    def test_unparsable_manifest(self, corpus_dir):
        (corpus_dir / MANIFEST_NAME).write_text("{not json")
        with pytest.raises(DatasetError, match="not valid JSON"):
            ShardedCorpusReader(corpus_dir)

    def test_wrong_store_version(self, corpus_dir):
        _edit_manifest(corpus_dir, lambda m: m.update(version=STORE_VERSION + 1))
        with pytest.raises(DatasetError, match="store version"):
            ShardedCorpusReader(corpus_dir)

    def test_shard_count_mismatch(self, corpus_dir):
        _edit_manifest(corpus_dir, lambda m: m.update(n_shards=7))
        with pytest.raises(DatasetError, match="claims"):
            ShardedCorpusReader(corpus_dir)

    def test_tampered_fingerprint(self, corpus_dir):
        _edit_manifest(corpus_dir, lambda m: m.update(fingerprint="deadbeef"))
        with pytest.raises(DatasetError, match="does not match"):
            ShardedCorpusReader(corpus_dir)

    def test_missing_shard_file(self, corpus_dir):
        (corpus_dir / shard_filename(1)).unlink()
        with pytest.raises(DatasetError, match="missing from disk"):
            ShardedCorpusReader(corpus_dir).packed()

    def test_truncated_shard_fails_checksum(self, corpus_dir):
        path = corpus_dir / shard_filename(0)
        path.write_bytes(path.read_bytes()[:-40])
        with pytest.raises(DatasetError, match="corrupted or truncated"):
            ShardedCorpusReader(corpus_dir).packed()

    def test_corrupted_shard_fails_checksum(self, corpus_dir):
        path = corpus_dir / shard_filename(2)
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(DatasetError, match="checksum"):
            ShardedCorpusReader(corpus_dir).verify()

    def test_unverified_garbage_shard_still_typed(self, corpus_dir):
        # Even with verify=False, unreadable bytes must raise DatasetError,
        # not leak a zipfile/numpy exception.
        (corpus_dir / shard_filename(0)).write_bytes(b"not an npz at all")
        with pytest.raises(DatasetError, match="readable shard archive"):
            ShardedCorpusReader(corpus_dir).packed(verify=False)

    def test_tampered_entry_counts_never_short_corpus(self, corpus_dir):
        def shrink(manifest):
            manifest["shards"][0]["n_bags"] -= 1

        _edit_manifest(corpus_dir, shrink)
        with pytest.raises(DatasetError, match="promises"):
            ShardedCorpusReader(corpus_dir).packed(verify=False)

    def test_tampered_totals_never_short_corpus(self, corpus_dir):
        _edit_manifest(corpus_dir, lambda m: m.update(n_bags=m["n_bags"] + 4))
        with pytest.raises(DatasetError, match="short of"):
            ShardedCorpusReader(corpus_dir).packed()


class TestPackedArchive:
    def test_round_trip(self, tmp_path):
        config = tiny_config()
        packed = corpus_from_config(config)
        path = save_packed_corpus(
            packed, tmp_path / "corpus.npz",
            fingerprint=config.fingerprint, config=config,
        )
        loaded, manifest = load_packed_corpus(path)
        assert manifest["fingerprint"] == config.fingerprint
        assert loaded.n_bags == packed.n_bags
        np.testing.assert_array_equal(loaded.instances, packed.instances)
        np.testing.assert_array_equal(loaded.offsets, packed.offsets)
        assert list(loaded.image_ids) == list(packed.image_ids)
        assert list(loaded.categories) == list(packed.categories)

    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError, match="does not exist"):
            load_packed_corpus(tmp_path / "nope.npz")

    def test_garbage_file(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"garbage")
        with pytest.raises(DatasetError, match="readable"):
            load_packed_corpus(path)
