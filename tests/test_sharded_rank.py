"""Unit tests for the sharded bound-pruned rank index (repro.core.sharding)."""

import numpy as np
import pytest

from repro.api.service import RetrievalService
from repro.core.concept import LearnedConcept
from repro.core.retrieval import (
    AUTO_SHARD_MIN_BAGS,
    PackedCorpus,
    Ranker,
    RetrievalCandidate,
    packed_view,
    rank_by_loop,
)
from repro.core.sharding import (
    DEFAULT_SHARD_BAGS,
    MAX_AUTO_SHARDS,
    ShardIndex,
    ShardedRanker,
    shard_boundaries,
)
from repro.errors import DatabaseError, QueryError


def synthetic_packed(n_bags=300, n_dims=8, seed=3, max_instances=5):
    rng = np.random.default_rng(seed)
    candidates = []
    for index in range(n_bags):
        n = int(rng.integers(1, max_instances + 1))
        candidates.append(
            RetrievalCandidate(
                image_id=f"img-{index:05d}",
                category=("even", "odd")[index % 2],
                instances=rng.normal(size=(n, n_dims)),
            )
        )
    return PackedCorpus.from_candidates(candidates)


def seeded_concept(n_dims, seed=7):
    rng = np.random.default_rng(seed)
    return LearnedConcept(
        t=rng.normal(size=n_dims), w=rng.uniform(0.05, 1.0, n_dims), nll=0.0
    )


class TestShardBoundaries:
    def test_automatic_partition_scales_with_bags(self):
        assert shard_boundaries(10).tolist() == [0, 10]
        two = shard_boundaries(2 * DEFAULT_SHARD_BAGS)
        assert len(two) == 3 and two[-1] == 2 * DEFAULT_SHARD_BAGS

    def test_automatic_partition_is_capped(self):
        huge = shard_boundaries(100 * DEFAULT_SHARD_BAGS)
        assert len(huge) == MAX_AUTO_SHARDS + 1

    def test_explicit_count_clamped_to_bags(self):
        assert shard_boundaries(3, 10).tolist() == [0, 1, 2, 3]

    def test_partition_covers_exactly(self):
        bounds = shard_boundaries(1000, 7)
        assert bounds[0] == 0 and bounds[-1] == 1000
        assert np.all(np.diff(bounds) >= 1)

    def test_empty_and_invalid(self):
        assert shard_boundaries(0).tolist() == [0]
        with pytest.raises(DatabaseError):
            shard_boundaries(10, 0)


class TestShardIndex:
    def test_lower_bounds_never_exceed_exact_distances(self):
        packed = synthetic_packed()
        index = ShardIndex.build(packed, 4)
        for seed in range(5):
            concept = seeded_concept(packed.n_dims, seed)
            bounds = index.lower_bounds(concept)
            exact = packed.min_distances(concept)
            assert np.all(bounds <= exact + 1e-9)

    def test_bound_is_tight_for_single_instance_bags(self):
        packed = synthetic_packed(max_instances=1)
        index = ShardIndex.build(packed)
        concept = seeded_concept(packed.n_dims)
        np.testing.assert_allclose(
            index.lower_bounds(concept), packed.min_distances(concept),
            rtol=1e-9,
        )

    def test_reshard_keeps_envelopes(self):
        packed = synthetic_packed(50)
        index = ShardIndex.build(packed, 2)
        resharded = index.reshard(5)
        assert resharded.n_shards == 5
        assert resharded.lower is index.lower
        assert resharded.upper is index.upper
        # Partition-independent derived arrays are handed over, not
        # recomputed — reshard is O(n_shards).
        assert resharded.group_lower is index.group_lower
        assert resharded.group_upper is index.group_upper
        assert resharded.extent is index.extent

    def test_dimension_mismatch_rejected(self):
        index = ShardIndex.build(synthetic_packed(20, n_dims=4))
        with pytest.raises(DatabaseError):
            index.lower_bounds(seeded_concept(5))

    def test_empty_corpus(self):
        packed = PackedCorpus.pack([], [], [])
        index = ShardIndex.build(packed)
        assert index.n_bags == 0 and index.n_shards == 1

    def test_malformed_boundaries_rejected(self):
        packed = synthetic_packed(10)
        good = ShardIndex.build(packed, 2)
        with pytest.raises(DatabaseError):
            ShardIndex(packed, good.lower, good.upper, np.array([0, 3]))
        with pytest.raises(DatabaseError):
            ShardIndex(packed, good.upper, good.lower, good.boundaries)

    def test_corpus_caches_and_reshards_index(self):
        packed = synthetic_packed(40)
        assert packed.cached_shard_index is None
        index = packed.shard_index(3)
        assert packed.cached_shard_index is index
        assert packed.shard_index() is index  # None keeps the cached one
        resharded = packed.shard_index(5)
        assert resharded.n_shards == 5
        assert packed.cached_shard_index is resharded

    def test_adopt_rejects_foreign_index(self):
        packed = synthetic_packed(40)
        other = ShardIndex.build(synthetic_packed(10))
        with pytest.raises(DatabaseError):
            packed.adopt_shard_index(other)

    def test_prune_floor_tracks_corpus_and_query_magnitude(self):
        packed = synthetic_packed(20)
        index = ShardIndex.build(packed)
        concept = seeded_concept(packed.n_dims)
        small = index.prune_floor(concept)
        assert small > 0.0
        shifted = LearnedConcept(t=concept.t + 1e8, w=concept.w, nll=0.0)
        # A huge translation inflates the expanded form's cancellation
        # error, so the floor must grow with it.
        assert index.prune_floor(shifted) > 1e10 * small
        with pytest.raises(DatabaseError):
            index.prune_floor(seeded_concept(packed.n_dims + 1))


class TestShardedRankerEquivalence:
    """Sharded output must be ordering-identical to Ranker and the loop."""

    @pytest.mark.parametrize("n_shards,workers,chunk_bags", [
        (1, 1, 1024), (4, 1, 16), (4, 3, 16), (7, 2, 1),
    ])
    def test_matches_exhaustive_and_loop(self, n_shards, workers, chunk_bags):
        packed = synthetic_packed()
        candidates = list(packed.candidates())
        sharded = ShardedRanker(
            n_shards=n_shards, workers=workers, chunk_bags=chunk_bags
        )
        for seed in range(3):
            concept = seeded_concept(packed.n_dims, seed)
            for top_k in (1, 10, packed.n_bags, packed.n_bags + 7, None):
                fast = sharded.rank(concept, packed, top_k=top_k)
                slow = Ranker(auto_shard=False).rank(concept, packed,
                                                     top_k=top_k)
                assert fast.image_ids == slow.image_ids
                assert fast.total_candidates == slow.total_candidates
                np.testing.assert_allclose(
                    fast.distances, slow.distances, rtol=1e-9
                )
            loop = rank_by_loop(concept, candidates)
            top = sharded.rank(concept, packed, top_k=25)
            assert top.image_ids == loop.image_ids[:25]

    def test_exclude_and_category_filter(self):
        packed = synthetic_packed()
        concept = seeded_concept(packed.n_dims)
        excluded = packed.image_ids[::13]
        fast = ShardedRanker(n_shards=5, chunk_bags=7).rank(
            concept, packed, top_k=9, exclude=excluded, category_filter="odd"
        )
        slow = Ranker(auto_shard=False).rank(
            concept, packed, top_k=9, exclude=excluded, category_filter="odd"
        )
        assert fast.image_ids == slow.image_ids
        assert fast.total_candidates == slow.total_candidates
        assert fast.is_truncated and slow.is_truncated

    def test_single_bag_shards(self):
        packed = synthetic_packed(30)
        concept = seeded_concept(packed.n_dims)
        fast = ShardedRanker(n_shards=packed.n_bags, chunk_bags=1).rank(
            concept, packed, top_k=5
        )
        slow = Ranker(auto_shard=False).rank(concept, packed, top_k=5)
        assert fast.image_ids == slow.image_ids

    def test_ties_at_the_top_k_boundary(self):
        # Five identical bags tie; k=3 must cut by id, exactly like the
        # exhaustive path, even when pruning is active.
        rng = np.random.default_rng(2)
        shared = rng.normal(size=(2, 4))
        names = ["m-2", "a-9", "z-1", "a-1", "m-1"]
        candidates = [
            RetrievalCandidate(name, "tied", shared.copy()) for name in names
        ] + [
            RetrievalCandidate(f"far-{i}", "far", shared + 40.0 + i)
            for i in range(20)
        ]
        packed = PackedCorpus.from_candidates(candidates)
        concept = seeded_concept(4)
        fast = ShardedRanker(n_shards=6, chunk_bags=2).rank(
            concept, packed, top_k=3
        )
        slow = Ranker(auto_shard=False).rank(concept, packed, top_k=3)
        assert fast.image_ids == slow.image_ids == ("a-1", "a-9", "m-1")

    @pytest.mark.parametrize("n_shards,workers", [(1, 1), (3, 2)])
    def test_zero_threshold_cancellation_regime(self, n_shards, workers):
        # Regression (review of PR 5): relative slack alone gives the
        # cutoff zero width once the running kth-best distance is 0.  A
        # huge translation puts the expanded-form kernel deep in
        # cancellation: bags sitting exactly at ``t`` score a computed 0,
        # and the bag offset by 1e-4 (true distance 1e-8) *also* clamps to
        # 0 — while its clip-form bound is a clean positive 1e-8.  Without
        # the absolute prune floor that bag is skipped even though it ties
        # the kth-best and wins the id tie-break, diverging from the
        # exhaustive ranker.
        t = 1e8
        candidates = [
            RetrievalCandidate(
                "aaa-extra", "x", np.array([[t + 1e-4]])
            )
        ] + [
            RetrievalCandidate(f"zzz-{i:03d}", "x", np.array([[t]]))
            for i in range(6)
        ]
        packed = PackedCorpus.from_candidates(candidates)
        concept = LearnedConcept(t=np.array([t]), w=np.array([1.0]), nll=0.0)
        assert packed.min_distances(concept)[0] == 0.0  # the clamped tie
        fast = ShardedRanker(n_shards=n_shards, workers=workers).rank(
            concept, packed, top_k=2
        )
        slow = Ranker(auto_shard=False).rank(concept, packed, top_k=2)
        assert fast.image_ids == slow.image_ids == ("aaa-extra", "zzz-000")

    def test_explicit_prebuilt_index(self):
        packed = synthetic_packed(60)
        index = ShardIndex.build(packed, 3)
        concept = seeded_concept(packed.n_dims)
        fast = ShardedRanker().rank(concept, packed, top_k=4, index=index)
        slow = Ranker(auto_shard=False).rank(concept, packed, top_k=4)
        assert fast.image_ids == slow.image_ids
        assert packed.cached_shard_index is None  # explicit index, no cache

    def test_mismatched_index_rejected(self):
        packed = synthetic_packed(60)
        foreign = ShardIndex.build(synthetic_packed(10))
        with pytest.raises(DatabaseError):
            ShardedRanker().rank(
                seeded_concept(packed.n_dims), packed, top_k=4, index=foreign
            )
        # Same shape is not enough: an index over different instances
        # would prune silently wrong, so corpus identity is required.
        twin = ShardIndex.build(synthetic_packed(60, seed=99))
        with pytest.raises(DatabaseError):
            ShardedRanker().rank(
                seeded_concept(packed.n_dims), packed, top_k=4, index=twin
            )

    def test_invalid_parameters(self):
        with pytest.raises(DatabaseError):
            ShardedRanker(n_shards=0)
        with pytest.raises(DatabaseError):
            ShardedRanker(workers=0)
        with pytest.raises(DatabaseError):
            ShardedRanker(chunk_bags=0)
        with pytest.raises(DatabaseError):
            ShardedRanker().rank(
                seeded_concept(4), synthetic_packed(10, n_dims=4), top_k=0
            )

    def test_one_shot_exclude_iterator_survives_the_fallback(self):
        # top_k >= total routes to the exhaustive fallback, which must not
        # re-consume an already-exhausted exclude generator.
        packed = synthetic_packed(20, n_dims=4)
        concept = seeded_concept(4)
        excluded = packed.image_ids[:3]
        result = ShardedRanker(n_shards=4).rank(
            concept, packed, top_k=packed.n_bags, exclude=iter(excluded)
        )
        assert not set(excluded) & set(result.image_ids)
        assert result.total_candidates == packed.n_bags - 3

    def test_empty_and_fully_excluded(self):
        empty = PackedCorpus.pack([], [], [])
        concept = seeded_concept(4)
        assert len(ShardedRanker().rank(concept, empty, top_k=3)) == 0
        packed = synthetic_packed(12, n_dims=4)
        result = ShardedRanker(n_shards=3).rank(
            concept, packed, top_k=3, exclude=packed.image_ids
        )
        assert len(result) == 0 and result.total_candidates == 0


class TestRankerRouting:
    def test_default_ranker_never_routes_small_corpora(self):
        packed = synthetic_packed(50)
        Ranker().rank(seeded_concept(packed.n_dims), packed, top_k=5)
        assert packed.cached_shard_index is None

    def test_low_threshold_ranker_routes_and_caches_the_index(self):
        packed = synthetic_packed(50)
        concept = seeded_concept(packed.n_dims)
        routed = Ranker(min_shard_bags=10).rank(concept, packed, top_k=5)
        assert packed.cached_shard_index is not None
        exhaustive = Ranker(auto_shard=False).rank(concept, packed, top_k=5)
        assert routed.image_ids == exhaustive.image_ids

    def test_full_rankings_never_route(self):
        packed = synthetic_packed(50)
        Ranker(min_shard_bags=10).rank(seeded_concept(packed.n_dims), packed)
        assert packed.cached_shard_index is None

    def test_policy_disables_routing(self):
        packed = synthetic_packed(50)
        packed.configure_rank_index(enabled=False)
        Ranker(min_shard_bags=10).rank(
            seeded_concept(packed.n_dims), packed, top_k=5
        )
        assert packed.cached_shard_index is None

    def test_policy_pins_shard_count(self):
        packed = synthetic_packed(50)
        packed.configure_rank_index(n_shards=5)
        assert packed.rank_index_shards == 5
        Ranker(min_shard_bags=10).rank(
            seeded_concept(packed.n_dims), packed, top_k=5
        )
        assert packed.cached_shard_index.n_shards == 5

    def test_policy_validates(self):
        with pytest.raises(DatabaseError):
            synthetic_packed(10).configure_rank_index(n_shards=0)
        with pytest.raises(DatabaseError):
            Ranker(min_shard_bags=0)
        with pytest.raises(DatabaseError):
            Ranker(workers=0)

    def test_views_packed_on_the_spot_never_route(self):
        # Regression (review of PR 5): packed_view's throwaway creations
        # — id subsets, legacy re-packs, raw-iterable packs — die with
        # the call, so routing them would build a discarded shard index
        # on every query.  They come back non-routable; caller-held views
        # keep their policy.
        packed = synthetic_packed(30, n_dims=4)
        assert packed_view(packed).rank_index_enabled
        assert not packed_view(packed, packed.image_ids[:10]).rank_index_enabled

        rng = np.random.default_rng(5)
        candidates = [
            RetrievalCandidate(f"img-{i:03d}", "c", rng.normal(size=(2, 4)))
            for i in range(30)
        ]
        assert not packed_view(candidates).rank_index_enabled

        class LegacyOnly:
            image_ids = tuple(c.image_id for c in candidates)

            def retrieval_candidates(self, ids):
                by_id = {c.image_id: c for c in candidates}
                return [by_id[i] for i in ids]

        assert not packed_view(LegacyOnly()).rank_index_enabled
        # A low-threshold Ranker fed the raw list stays exhaustive — and
        # correct.
        concept = seeded_concept(4)
        routed = Ranker(min_shard_bags=5).rank(concept, candidates, top_k=3)
        exhaustive = Ranker(auto_shard=False).rank(concept, candidates, top_k=3)
        assert routed.image_ids == exhaustive.image_ids


class TestMinDistancesAt:
    def test_matches_full_kernel_subset(self):
        packed = synthetic_packed()
        concept = seeded_concept(packed.n_dims)
        full = packed.min_distances(concept)
        chosen = np.array([17, 3, 250, 3, 0, 299])
        np.testing.assert_allclose(
            packed.min_distances_at(concept, chosen), full[chosen], rtol=1e-9
        )

    def test_matches_after_squared_cache_exists(self):
        packed = synthetic_packed(40)
        concept = seeded_concept(packed.n_dims)
        before = packed.min_distances_at(concept, [5, 1])
        packed.min_distances(concept)  # builds the squared cache
        after = packed.min_distances_at(concept, [5, 1])
        np.testing.assert_allclose(before, after, rtol=1e-12)

    def test_validates_inputs(self):
        packed = synthetic_packed(10)
        concept = seeded_concept(packed.n_dims)
        assert packed.min_distances_at(concept, []).size == 0
        with pytest.raises(DatabaseError):
            packed.min_distances_at(concept, [10])
        with pytest.raises(DatabaseError):
            packed.min_distances_at(concept, [-1])
        with pytest.raises(DatabaseError):
            packed.min_distances_at(seeded_concept(packed.n_dims + 1), [0])


class TestServiceKnobs:
    def test_rank_shards_validated(self, tiny_scene_db):
        with pytest.raises(QueryError):
            RetrievalService(tiny_scene_db, rank_shards=0)

    def test_policy_applied_to_served_corpus(self, tiny_scene_db):
        service = RetrievalService(tiny_scene_db, rank_index=False,
                                   rank_shards=3)
        assert service.rank_index is False and service.rank_shards == 3
        fitted = service.fit(
            tiny_scene_db.ids_in_category("sunset")[:2],
            learner="random",
        )
        service.rank_with(fitted, top_k=3)
        packed = tiny_scene_db.cached_packed
        assert packed is not None
        assert packed.rank_index_enabled is False
        assert packed.rank_index_shards == 3
        # A default-configured service must not flip a policy another
        # service stamped on the shared view.
        RetrievalService(tiny_scene_db).rank_with(fitted, top_k=3)
        assert packed.rank_index_enabled is False
        # The fixture is session-shared: restore the default policy
        # (n_shards=None clears the pin back to automatic).
        packed.configure_rank_index(enabled=True, n_shards=None)
        assert packed.rank_index_shards is None

    def test_subset_queries_never_index_the_ephemeral_view(self, tiny_scene_db):
        service = RetrievalService(tiny_scene_db)
        fitted = service.fit(
            tiny_scene_db.ids_in_category("sunset")[:2], learner="random"
        )
        subset = tiny_scene_db.image_ids[:8]
        result = service.rank_with(fitted, candidate_ids=subset, top_k=3)
        assert result.total_candidates == len(subset)
        cached = tiny_scene_db.cached_packed
        if cached is not None:  # the full view, if built, keeps its policy
            assert cached.rank_index_enabled is True

    def test_stats_report_the_policy(self, tiny_scene_db):
        service = RetrievalService(tiny_scene_db, rank_shards=2)
        stats = service.stats()
        assert stats["rank_index"] == {
            "enabled": True,
            "shards": 2,
            "mode": "exact",
            "reorder_bags": False,
        }

    def test_default_threshold_constant_is_sane(self):
        assert AUTO_SHARD_MIN_BAGS >= 1024
