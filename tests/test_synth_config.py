"""Unit tests for the scenario configuration and preset registry."""

import dataclasses

import pytest

from repro.datasets.scenes import SCENE_CATEGORIES
from repro.datasets.synth import (
    SCENARIO_SCHEMA_VERSION,
    ScenarioConfig,
    available_presets,
    get_preset,
    register_preset,
)
from repro.errors import DatasetError


def feature_config(**overrides) -> ScenarioConfig:
    """A tiny feature-mode scenario for fast tests."""
    defaults = dict(
        name="test",
        mode="feature",
        categories=("alpha", "beta", "gamma"),
        bags_per_category=4,
        feature_dims=4,
        instances_per_bag=3,
    )
    defaults.update(overrides)
    return ScenarioConfig(**defaults)


class TestValidation:
    def test_defaults_are_valid_image_mode(self):
        config = ScenarioConfig()
        assert config.mode == "image"
        assert config.categories == SCENE_CATEGORIES

    @pytest.mark.parametrize(
        "overrides",
        [
            {"mode": "movie"},
            {"categories": ()},
            {"categories": ("a", "a")},
            {"bags_per_category": 0},
            {"image_size": 8},
            {"resolution": 1},
            {"feature_dims": 1},
            {"instances_per_bag": 0},
            {"cluster_spread": 0.0},
            {"objects_per_image": 0},
            {"clutter": 1.5},
            {"label_noise": -0.1},
            {"category_skew": -1.0},
            {"target_scale": 0.0},
            {"target_scale": 1.5},
            {"color_jitter": -0.01},
            {"region_family": "nope"},
        ],
    )
    def test_bad_knobs_raise(self, overrides):
        with pytest.raises(DatasetError):
            ScenarioConfig(**overrides)

    def test_image_mode_rejects_non_scene_categories(self):
        with pytest.raises(DatasetError, match="scene categories"):
            ScenarioConfig(categories=("waterfall", "spaceship"))

    def test_feature_mode_accepts_arbitrary_categories(self):
        config = feature_config(categories=("x", "y"))
        assert config.categories == ("x", "y")

    def test_feature_mode_distractors_bounded_by_bag_size(self):
        with pytest.raises(DatasetError, match="objects_per_image"):
            feature_config(instances_per_bag=2, objects_per_image=5)


class TestSerialisation:
    def test_round_trip(self):
        config = feature_config(clutter=0.4, label_noise=0.1, seed=9)
        assert ScenarioConfig.from_dict(config.to_dict()) == config

    def test_to_dict_embeds_schema_version(self):
        assert ScenarioConfig().to_dict()["schema_version"] == SCENARIO_SCHEMA_VERSION

    def test_unknown_schema_version_rejected(self):
        payload = feature_config().to_dict()
        payload["schema_version"] = 99
        with pytest.raises(DatasetError, match="schema version"):
            ScenarioConfig.from_dict(payload)

    def test_missing_schema_version_rejected(self):
        payload = feature_config().to_dict()
        del payload["schema_version"]
        with pytest.raises(DatasetError, match="schema version"):
            ScenarioConfig.from_dict(payload)

    def test_unknown_fields_tolerated(self):
        payload = feature_config().to_dict()
        payload["future_knob"] = 42
        assert ScenarioConfig.from_dict(payload) == feature_config()

    def test_non_dict_payload_rejected(self):
        with pytest.raises(DatasetError, match="must be a dict"):
            ScenarioConfig.from_dict(["not", "a", "dict"])


class TestFingerprint:
    def test_stable_for_equal_configs(self):
        assert feature_config().fingerprint == feature_config().fingerprint

    def test_every_knob_changes_it(self):
        base = feature_config()
        for overrides in (
            {"seed": 1},
            {"clutter": 0.2},
            {"label_noise": 0.2},
            {"bags_per_category": 5},
            {"name": "renamed"},
        ):
            assert dataclasses.replace(base, **overrides).fingerprint != base.fingerprint


class TestLayout:
    def test_uniform_counts(self):
        assert feature_config().category_counts() == (4, 4, 4)

    def test_skewed_counts_sum_exactly(self):
        config = feature_config(bags_per_category=7, category_skew=1.0)
        counts = config.category_counts()
        assert sum(counts) == config.total_bags
        assert counts[0] > counts[-1]

    def test_with_total_bags_rounds_up(self):
        config = feature_config().with_total_bags(10)
        assert config.total_bags >= 10
        assert config.bags_per_category == 4

    def test_with_total_bags_rejects_nonpositive(self):
        with pytest.raises(DatasetError):
            feature_config().with_total_bags(0)

    def test_iter_specs_covers_corpus_in_order(self):
        config = feature_config()
        specs = list(config.iter_specs())
        assert len(specs) == config.total_bags
        assert [position for position, _, _ in specs] == list(range(config.total_bags))
        assert specs[0] == (0, "alpha", 0)
        assert specs[-1] == (11, "gamma", 3)

    def test_iter_specs_slice_matches_full_listing(self):
        config = feature_config(bags_per_category=5, category_skew=0.7)
        full = list(config.iter_specs())
        assert list(config.iter_specs(3, 11)) == full[3:11]

    def test_iter_specs_rejects_bad_slices(self):
        config = feature_config()
        with pytest.raises(DatasetError, match="slice"):
            list(config.iter_specs(5, 3))
        with pytest.raises(DatasetError, match="slice"):
            list(config.iter_specs(0, config.total_bags + 1))

    def test_n_dims_per_mode(self):
        assert feature_config(feature_dims=7).n_dims == 7
        assert ScenarioConfig(resolution=5).n_dims == 25


class TestPresets:
    def test_expected_presets_registered(self):
        names = available_presets()
        for expected in ("clean", "cluttered", "noisy-labels", "skewed", "tiny-target"):
            assert expected in names

    def test_presets_build_valid_configs(self):
        for name in available_presets():
            config = get_preset(name)
            assert isinstance(config, ScenarioConfig)
            assert config.name == name

    def test_cluttered_differs_from_clean(self):
        assert get_preset("cluttered").fingerprint != get_preset("clean").fingerprint
        assert get_preset("cluttered").clutter > 0

    def test_unknown_preset(self):
        with pytest.raises(DatasetError, match="unknown scenario preset"):
            get_preset("pristine")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(DatasetError, match="already registered"):
            register_preset("clean", lambda: ScenarioConfig())

    def test_overwrite_allows_replacement(self):
        original = get_preset("clean")
        register_preset("clean", lambda: ScenarioConfig(seed=123), overwrite=True)
        try:
            assert get_preset("clean").seed == 123
        finally:
            register_preset("clean", lambda: original, overwrite=True)
