"""Deadline propagation, hung-worker detection, circuit breaking and the
degradation ladder: a stalled worker costs a 504 and a restart, never a
hang, and a degraded answer is bit-identical to the healthy one."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.api.service import RetrievalService
from repro.core.concept import LearnedConcept
from repro.core.retrieval import Ranker
from repro.datasets.synth import corpus_from_config
from repro.datasets.synth.config import ScenarioConfig
from repro.errors import CodecError, DeadlineError, ServeError
from repro.serve import codec
from repro.serve.app import ServiceApp, handle_safely
from repro.serve.codec import deadline_ms_field
from repro.serve.resilience import (
    MIN_STAMP_SECONDS,
    CircuitBreaker,
    Deadline,
    ResilienceStats,
    deadline_from_payload,
    stamp_deadline,
)
from repro.serve.workers import WorkerDispatchApp, WorkerPool
from repro.testing.faults import FaultPlan, FaultSpec

_CONFIG = ScenarioConfig(
    name="resilience-test",
    mode="feature",
    categories=tuple(f"cat{i}" for i in range(6)),
    feature_dims=6,
    instances_per_bag=3,
    cluster_spread=0.2,
).with_total_bags(48)


@pytest.fixture(scope="module")
def packed():
    return corpus_from_config(_CONFIG)


@pytest.fixture(scope="module")
def local_service(packed):
    return RetrievalService(packed)


def _rank_payload(packed, bag: int = 0, **extra) -> dict:
    concept = LearnedConcept(
        t=packed.instances[bag], w=np.ones(packed.n_dims), nll=0.0
    )
    return codec.envelope(
        "rank", {"concept": codec.encode_concept(concept), "top_k": 5, **extra}
    )


class _FakeClock:
    def __init__(self, now: float = 100.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now


class TestDeadline:
    def test_budget_counts_down_on_the_injected_clock(self):
        clock = _FakeClock()
        deadline = Deadline(2.0, clock=clock)
        assert deadline.remaining() == pytest.approx(2.0)
        clock.now += 1.5
        assert deadline.remaining() == pytest.approx(0.5)
        assert not deadline.expired
        clock.now += 1.0
        assert deadline.expired
        assert deadline.remaining() == 0.0
        assert deadline.remaining_ms() == 0.0

    def test_from_ms(self):
        clock = _FakeClock()
        deadline = Deadline.from_ms(250.0, clock=clock)
        assert deadline.remaining_ms() == pytest.approx(250.0)

    @pytest.mark.parametrize("budget", [0.0, -1.0, float("nan"), float("inf")])
    def test_invalid_budgets_rejected(self, budget):
        with pytest.raises(ServeError, match="budget"):
            Deadline(budget)

    def test_sub_budget_is_a_fraction_of_remaining(self):
        clock = _FakeClock()
        deadline = Deadline(2.0, clock=clock)
        clock.now += 1.0
        fragment = deadline.sub_budget(0.5)
        assert fragment.remaining() == pytest.approx(0.5)

    def test_sub_budget_of_expired_deadline_is_tiny_not_crashing(self):
        clock = _FakeClock()
        deadline = Deadline(1.0, clock=clock)
        clock.now += 5.0
        fragment = deadline.sub_budget(0.5)
        assert fragment.remaining() <= MIN_STAMP_SECONDS

    @pytest.mark.parametrize("fraction", [0.0, -0.5, 1.5])
    def test_invalid_sub_budget_fraction_rejected(self, fraction):
        with pytest.raises(ServeError, match="fraction"):
            Deadline(1.0).sub_budget(fraction)


class TestWireStamping:
    def test_stamp_then_parse_round_trips_the_remaining_budget(self):
        deadline = Deadline.from_ms(500.0)
        payload = stamp_deadline({"kind": "rank"}, deadline)
        assert payload is not None and "deadline_ms" in payload
        parsed = deadline_from_payload(payload)
        assert parsed is not None
        assert 0.0 < parsed.remaining_ms() <= 500.0

    def test_stamp_without_deadline_is_passthrough(self):
        payload = {"kind": "rank"}
        assert stamp_deadline(payload, None) is payload

    def test_stamp_does_not_mutate_the_original(self):
        original = {"kind": "rank"}
        stamped = stamp_deadline(original, Deadline.from_ms(100.0))
        assert "deadline_ms" not in original
        assert stamped is not original

    def test_expired_deadline_stamps_a_tiny_positive_budget(self):
        clock = _FakeClock()
        deadline = Deadline(1.0, clock=clock)
        clock.now += 10.0
        stamped = stamp_deadline({"kind": "rank"}, deadline)
        # The wire field stays codec-valid (positive); the receiver's
        # re-created deadline expires immediately.
        assert stamped["deadline_ms"] > 0.0

    def test_payload_without_field_parses_to_none(self):
        assert deadline_from_payload({"kind": "rank"}) is None
        assert deadline_from_payload(None) is None

    @pytest.mark.parametrize("value", ["soon", True, -5, 0, float("nan")])
    def test_bad_wire_values_are_codec_errors(self, value):
        with pytest.raises(CodecError, match="deadline_ms"):
            deadline_from_payload({"kind": "rank", "deadline_ms": value})

    def test_codec_field_returns_float(self):
        assert deadline_ms_field({"deadline_ms": 250}) == 250.0
        assert deadline_ms_field({}) is None
        assert deadline_ms_field(None) is None


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        clock = _FakeClock()
        breaker = CircuitBreaker(2, threshold=3, cooldown_seconds=5.0, clock=clock)
        for _ in range(2):
            breaker.record_failure(0)
        assert breaker.available(0)
        breaker.record_failure(0)
        assert not breaker.available(0)
        assert breaker.available(1)
        assert breaker.n_opens == 1

    def test_success_resets_the_failure_count(self):
        breaker = CircuitBreaker(1, threshold=2)
        breaker.record_failure(0)
        breaker.record_success(0)
        breaker.record_failure(0)
        assert breaker.available(0)

    def test_reprobes_after_cooldown(self):
        clock = _FakeClock()
        breaker = CircuitBreaker(1, threshold=1, cooldown_seconds=5.0, clock=clock)
        breaker.record_failure(0)
        assert not breaker.available(0)
        clock.now += 5.1
        assert breaker.available(0)  # half-open: one probe allowed
        breaker.record_success(0)
        assert breaker.available(0)
        assert breaker.n_opens == 1

    def test_failures_while_open_do_not_recount_opens(self):
        clock = _FakeClock()
        breaker = CircuitBreaker(1, threshold=1, cooldown_seconds=5.0, clock=clock)
        breaker.record_failure(0)
        breaker.record_failure(0)
        assert breaker.n_opens == 1

    def test_snapshot_shape(self):
        breaker = CircuitBreaker(2, threshold=4, cooldown_seconds=2.0)
        breaker.record_failure(1)
        snap = breaker.snapshot()
        assert snap["threshold"] == 4
        assert snap["cooldown_seconds"] == 2.0
        assert snap["opens"] == 0
        assert snap["open_workers"] == []
        assert snap["consecutive_failures"] == [0, 1]

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"threshold": 0},
            {"cooldown_seconds": -1.0},
        ],
    )
    def test_invalid_args_rejected(self, kwargs):
        with pytest.raises(ServeError):
            CircuitBreaker(1, **kwargs)

    def test_zero_slots_rejected(self):
        with pytest.raises(ServeError):
            CircuitBreaker(0)


class TestResilienceStats:
    def test_counters_start_at_zero_and_accumulate(self):
        stats = ResilienceStats()
        snap = stats.snapshot()
        assert set(ResilienceStats.COUNTERS) <= set(snap)
        assert all(value == 0 for value in snap.values())
        stats.incr("deadline_expiries")
        stats.incr("deadline_expiries", 2)
        assert stats.get("deadline_expiries") == 3

    def test_unknown_counter_rejected(self):
        with pytest.raises(ServeError):
            ResilienceStats().incr("nope")


class TestServiceAppDeadline:
    def test_expired_deadline_maps_to_504(self, local_service):
        app = ServiceApp(local_service)
        payload = codec.envelope("rank", {"session": "x"})
        payload["deadline_ms"] = 0.001
        time.sleep(0.01)
        status, reply = handle_safely(app, "rank", payload)
        assert status == 504
        assert reply["error"] == "DeadlineError"
        assert reply["retryable"] is True

    def test_generous_deadline_answers_normally(self, local_service, packed):
        app = ServiceApp(local_service)
        payload = _rank_payload(packed)
        payload["deadline_ms"] = 60_000.0
        status, reply = handle_safely(app, "rank", payload)
        assert status == 200, reply

    def test_invalid_deadline_field_is_a_400(self, local_service, packed):
        app = ServiceApp(local_service)
        payload = _rank_payload(packed)
        payload["deadline_ms"] = "soon"
        status, reply = handle_safely(app, "rank", payload)
        assert status == 400
        assert reply["error"] == "CodecError"


def _wait_for_restarts(pool, n: int, timeout: float = 20.0) -> None:
    stop = time.monotonic() + timeout
    while pool.n_restarts < n and time.monotonic() < stop:
        time.sleep(0.05)
    assert pool.n_restarts >= n, f"expected >= {n} restarts, saw {pool.n_restarts}"


class TestHungWorkerDetection:
    def test_stalled_worker_costs_a_504_and_a_restart_not_a_hang(
        self, local_service, packed
    ):
        plan = FaultPlan(
            seed=0,
            faults=(FaultSpec(kind="stall", worker=0, after_requests=1,
                              seconds=30.0),),
        )
        with WorkerPool.from_service(local_service, 1, fault_plan=plan) as pool:
            app = WorkerDispatchApp(pool)
            payload = _rank_payload(packed)
            payload["deadline_ms"] = 400.0
            started = time.monotonic()
            status, reply = app.handle("rank", payload)
            elapsed = time.monotonic() - started
            assert status == 504
            assert reply["error"] == "DeadlineError"
            assert reply["retryable"] is True
            # The 504 answers at the deadline, not after the 30s stall or
            # the replacement worker's warm-up.
            assert elapsed < 5.0
            _wait_for_restarts(pool, 1)
            snap = pool.resilience.snapshot()
            assert snap["deadline_expiries"] >= 1
            assert snap["unresponsive_restarts"] >= 1
            # The replacement worker answers the same request.
            status, reply = app.handle("rank", _rank_payload(packed))
            assert status == 200, reply

    def test_already_expired_deadline_never_reaches_a_worker(
        self, local_service, packed
    ):
        with WorkerPool.from_service(local_service, 1) as pool:
            app = WorkerDispatchApp(pool)
            payload = _rank_payload(packed)
            payload["deadline_ms"] = 0.001
            time.sleep(0.01)
            status, reply = app.handle("rank", payload)
            assert status == 504
            assert pool.resilience.get("deadline_expiries") >= 1
            assert pool.n_restarts == 0

    def test_generous_deadline_is_bit_identical_to_no_deadline(
        self, local_service, packed
    ):
        with WorkerPool.from_service(local_service, 1) as pool:
            app = WorkerDispatchApp(pool)
            status, bare = app.handle("rank", _rank_payload(packed, bag=3))
            payload = _rank_payload(packed, bag=3)
            payload["deadline_ms"] = 60_000.0
            status2, budgeted = app.handle("rank", payload)
            assert status == status2 == 200
            assert bare["ranking"] == budgeted["ranking"]


class TestDegradedLadder:
    def test_crashed_fragment_degrades_to_a_bit_identical_answer(
        self, local_service, packed
    ):
        plan = FaultPlan(
            seed=0,
            faults=(FaultSpec(kind="crash", worker=0, after_requests=1,
                              endpoint="rank_fragment"),),
        )
        with WorkerPool.from_service(local_service, 2, fault_plan=plan) as pool:
            app = WorkerDispatchApp(pool, service=local_service,
                                    min_scatter_bags=1)
            assert app.scatter is not None
            concept = LearnedConcept(
                t=packed.instances[3], w=np.ones(packed.n_dims), nll=0.0
            )
            payload = _rank_payload(packed, bag=3)
            status, reply = app.handle("rank", payload)
            assert status == 200, reply
            remote = codec.decode_ranking(reply["ranking"])
            local = Ranker().rank(concept, packed, top_k=5)
            assert remote.image_ids == local.image_ids
            np.testing.assert_array_equal(remote.distances, local.distances)
            assert app.scatter.stats()["fallbacks"] >= 1
            snap = pool.resilience.snapshot()
            assert snap["degraded_answers"] >= 1
            assert snap["crash_restarts"] >= 1
            assert pool.n_restarts >= 1

    def test_rung_two_answers_locally_when_the_whole_pool_is_sick(
        self, local_service, packed, monkeypatch
    ):
        with WorkerPool.from_service(local_service, 2) as pool:
            app = WorkerDispatchApp(pool, service=local_service,
                                    min_scatter_bags=1)
            scatter = app.scatter
            assert scatter is not None

            def sick_scatter(*args, **kwargs):
                raise ServeError("scatter is down")

            def sick_handle(endpoint, payload, deadline=None):
                from repro.serve.app import error_payload

                return 500, error_payload(ServeError("worker is down"))

            monkeypatch.setattr(pool, "scatter", sick_scatter)
            monkeypatch.setattr(pool, "handle", sick_handle)
            payload = _rank_payload(packed, bag=7)
            status, reply = scatter.handle(payload)
            assert status == 200, reply
            concept = LearnedConcept(
                t=packed.instances[7], w=np.ones(packed.n_dims), nll=0.0
            )
            remote = codec.decode_ranking(reply["ranking"])
            local = Ranker().rank(concept, packed, top_k=5)
            assert remote.image_ids == local.image_ids
            np.testing.assert_array_equal(remote.distances, local.distances)
            assert pool.resilience.get("degraded_answers") >= 1

    def test_expired_deadline_stops_the_ladder_with_a_504(
        self, local_service, packed, monkeypatch
    ):
        with WorkerPool.from_service(local_service, 2) as pool:
            app = WorkerDispatchApp(pool, service=local_service,
                                    min_scatter_bags=1)
            scatter = app.scatter

            def sick_scatter(*args, **kwargs):
                raise ServeError("scatter is down")

            monkeypatch.setattr(pool, "scatter", sick_scatter)
            clock = _FakeClock()
            deadline = Deadline(1.0, clock=clock)
            clock.now += 2.0  # expire before the ladder starts
            status, reply = scatter.handle(_rank_payload(packed), deadline)
            assert status == 504
            assert reply["error"] == "DeadlineError"
            assert pool.resilience.get("deadline_expiries") >= 1


class TestBreakerRouting:
    def test_breaker_opens_and_routes_around_a_flapping_worker(
        self, local_service, packed
    ):
        # Worker 0 crashes on its first dispatch; threshold 1 opens its
        # breaker immediately, so round-robin routing skips it while the
        # replacement warms up.
        plan = FaultPlan(
            seed=0,
            faults=(FaultSpec(kind="crash", worker=0, after_requests=1),),
        )
        with WorkerPool.from_service(
            local_service, 2, fault_plan=plan,
            breaker_threshold=1, breaker_cooldown=30.0,
        ) as pool:
            app = WorkerDispatchApp(pool)
            saw_failure = False
            for attempt in range(6):
                status, reply = app.handle("rank", _rank_payload(packed))
                if status != 200:
                    saw_failure = True
                    assert reply.get("retryable") is True
            assert saw_failure
            snap = pool.resilience.snapshot()
            breaker = pool.breaker.snapshot()
            assert breaker["opens"] >= 1
            # With worker 0's breaker open, every later request still
            # answers (routed to worker 1).
            status, reply = app.handle("rank", _rank_payload(packed))
            assert status == 200, reply


class TestStatsSurface:
    def test_dispatch_stats_carry_the_resilience_block(self, local_service):
        with WorkerPool.from_service(local_service, 1) as pool:
            app = WorkerDispatchApp(pool)
            payload = app.stats()
            block = payload["resilience"]
            for counter in ResilienceStats.COUNTERS:
                assert counter in block
            assert block["restarts"] == 0
            assert block["breaker"]["opens"] == 0


class TestDrainUnderLoad:
    def test_sigterm_style_stop_completes_the_inflight_scatter(
        self, local_service, packed
    ):
        """server.stop() (what the SIGTERM handler calls) lets an
        in-flight scattered rank finish, refuses new requests, and the
        pool shuts down with no orphan workers."""
        from repro.serve.http import ReproClient, ReproServer

        plan = FaultPlan(
            seed=0,
            faults=(FaultSpec(kind="stall", worker=0, after_requests=1,
                              seconds=0.7, endpoint="rank_fragment"),),
        )
        pool = WorkerPool.from_service(local_service, 2, fault_plan=plan)
        app = WorkerDispatchApp(pool, service=local_service, min_scatter_bags=1)
        server = ReproServer(app, port=0).start()
        pids = pool.worker_pids()
        processes = [worker.process for worker in pool._workers]
        outcome: dict = {}

        def inflight() -> None:
            try:
                client = ReproClient(server.url, timeout=30)
                outcome["ranking"] = client.rank(
                    concept=LearnedConcept(
                        t=packed.instances[0], w=np.ones(packed.n_dims), nll=0.0
                    ),
                    top_k=5,
                )
            except Exception as exc:  # noqa: BLE001 - recorded for the assert
                outcome["error"] = exc

        caller = threading.Thread(target=inflight)
        caller.start()
        time.sleep(0.25)  # let the request reach the stalled fragment
        server.stop(drain_timeout=10.0)
        caller.join(15.0)
        assert not caller.is_alive()
        pool.stop()
        assert "error" not in outcome, outcome.get("error")
        assert len(outcome["ranking"]) == 5
        # New connections are refused after the drain.
        with pytest.raises(ServeError):
            ReproClient(server.url, timeout=2).health()
        for process in processes:
            assert not process.is_alive(), f"orphan worker pid {process.pid}"
        assert pids  # sanity: the pool really had workers
