"""HTTP transport tests: server + client round-trips over localhost,
error statuses, and the `serve` / `client-query` CLI wiring."""

from __future__ import annotations

import json
from urllib import error as urlerror
from urllib import request as urlrequest

import pytest

from repro.api.query import Query
from repro.api.service import RetrievalService
from repro.cli import _build_parser, build_server, main
from repro.database.persistence import save_database
from repro.errors import CodecError, QueryError, ServeError, SessionError
from repro.serve import codec
from repro.serve.app import ServiceApp
from repro.serve.http import ReproClient, ReproServer

_PARAMS = {"scheme": "identical", "max_iterations": 25, "seed": 5}


@pytest.fixture(scope="module")
def server(tiny_scene_db):
    service = RetrievalService(tiny_scene_db)
    with ReproServer(ServiceApp(service), port=0) as running:
        yield running


@pytest.fixture(scope="module")
def client(server) -> ReproClient:
    return ReproClient(server.url)


def _query(tiny_scene_db, **kwargs) -> Query:
    ids = tiny_scene_db.ids_in_category("waterfall")
    negs = tiny_scene_db.ids_in_category("field")
    defaults = dict(
        positive_ids=ids[:2],
        negative_ids=negs[:2],
        learner="dd",
        params=dict(_PARAMS),
        top_k=5,
    )
    defaults.update(kwargs)
    return Query(**defaults)


class TestHttpRoundTrip:
    def test_query_over_localhost_matches_in_process(self, client, tiny_scene_db):
        query = _query(tiny_scene_db)
        reference = RetrievalService(tiny_scene_db).query(query)
        result = client.query(query)
        assert result.ranking.image_ids == reference.ranking.image_ids
        assert result.concept is not None
        assert result.training is not None

    def test_batch_query_order_preserved(self, client, tiny_scene_db):
        queries = [
            _query(tiny_scene_db, query_id="a"),
            _query(tiny_scene_db, learner="random", params={"seed": 3},
                   query_id="b"),
        ]
        results = client.batch_query(queries, workers=2)
        assert [r.query.query_id for r in results] == ["a", "b"]

    def test_feedback_loop_over_http(self, client, tiny_scene_db):
        ids = tiny_scene_db.ids_in_category("waterfall")
        round1 = client.feedback(
            params=dict(_PARAMS), add_positive_ids=ids[:2], top_k=5
        )
        token = round1["session"]
        assert round1["ranking"] is not None
        bad = round1["ranking"].image_ids[0]
        round2 = client.feedback(token, false_positive_ids=[bad], top_k=5)
        assert round2["session"] == token
        assert bad in round2["negative_ids"]
        assert bad not in round2["ranking"].image_ids
        ranking = client.rank(session=token, top_k=3)
        assert len(ranking) == 3

    def test_rank_honours_exclude_on_session_path(self, client, tiny_scene_db):
        ids = tiny_scene_db.ids_in_category("waterfall")
        created = client.feedback(
            params=dict(_PARAMS), add_positive_ids=ids[:2], top_k=5
        )
        top = created["ranking"].image_ids[0]
        ranking = client.rank(session=created["session"], exclude=[top], top_k=5)
        assert top not in ranking.image_ids

    def test_keep_alive_survives_an_unknown_route(self, server):
        """A 404 must drain the request body, not desync the connection."""
        import http.client

        connection = http.client.HTTPConnection(server.host, server.port, timeout=10)
        try:
            connection.request(
                "POST", "/bad", body=json.dumps({"kind": "query"}),
                headers={"Content-Type": "application/json"},
            )
            first = connection.getresponse()
            assert first.status == 404
            first.read()
            # Same connection: the next request must parse cleanly.
            connection.request("GET", "/v1/health")
            second = connection.getresponse()
            assert second.status == 200
            assert json.loads(second.read())["status"] == "ok"
        finally:
            connection.close()

    def test_rank_with_wire_concept(self, client, tiny_scene_db):
        query = _query(tiny_scene_db)
        concept = RetrievalService(tiny_scene_db).query(query).concept
        ranking = client.rank(
            concept=concept, exclude=query.example_ids, top_k=4
        )
        assert len(ranking) == 4

    def test_health_and_stats(self, client, tiny_scene_db):
        health = client.health()
        assert health["status"] == "ok"
        assert health["n_images"] == len(tiny_scene_db)
        stats = client.stats()
        assert stats["service"]["n_queries"] >= 1
        assert "max_history" in stats["service"]


class TestHttpErrors:
    def test_bad_query_is_a_400_typed_error(self, client):
        with pytest.raises(CodecError, match="missing field"):
            client._call("query", {"kind": "query", "version": codec.WIRE_VERSION})

    def test_unknown_session_is_a_404_session_error(self, client):
        with pytest.raises(SessionError, match="unknown or expired"):
            client.rank(session="bogus")

    def test_unknown_route_404(self, server):
        with pytest.raises(urlerror.HTTPError) as excinfo:
            urlrequest.urlopen(f"{server.url}/v1/nope", timeout=10)
        assert excinfo.value.code == 404

    def test_non_json_body_400(self, server):
        request = urlrequest.Request(
            f"{server.url}/v1/query", data=b"not json", method="POST"
        )
        with pytest.raises(urlerror.HTTPError) as excinfo:
            urlrequest.urlopen(request, timeout=10)
        assert excinfo.value.code == 400
        body = json.loads(excinfo.value.read().decode("utf-8"))
        assert body["error"] == "CodecError"

    def test_malformed_content_length_400_and_connection_closed(self, server):
        import http.client

        connection = http.client.HTTPConnection(server.host, server.port, timeout=10)
        try:
            connection.putrequest("POST", "/v1/query")
            connection.putheader("Content-Length", "12abc")
            connection.putheader("Content-Type", "application/json")
            connection.endheaders()
            connection.send(b'{"kind": "q"}')
            response = connection.getresponse()
            assert response.status == 400
            body = json.loads(response.read())
            assert "Content-Length" in body["message"]
            # The server cannot resync an unknown-length body, so it closes.
            assert response.getheader("Connection") == "close"
        finally:
            connection.close()

    def test_oversized_body_rejected_with_413(self, server):
        import http.client

        from repro.serve.http import MAX_BODY_BYTES

        connection = http.client.HTTPConnection(server.host, server.port, timeout=10)
        try:
            connection.putrequest("POST", "/v1/query")
            connection.putheader("Content-Length", str(MAX_BODY_BYTES + 1))
            connection.putheader("Content-Type", "application/json")
            connection.endheaders()
            # The server must reply without waiting for the body.
            response = connection.getresponse()
            assert response.status == 413
            assert response.getheader("Connection") == "close"
        finally:
            connection.close()

    def test_unknown_endpoint_post_400(self, client):
        with pytest.raises(QueryError, match="unknown endpoint"):
            client._call("query2", {"kind": "query"})

    def test_unreachable_server(self):
        dead = ReproClient("http://127.0.0.1:9", timeout=2.0)
        with pytest.raises(ServeError, match="cannot reach"):
            dead.health()

    def test_double_start_rejected(self, server):
        with pytest.raises(ServeError, match="already running"):
            server.start()


class TestSlowClients:
    """Slow-client (slowloris) protection: a dribbling or stalled client
    costs one bounded read timeout, never a wedged handler thread."""

    @pytest.fixture()
    def impatient_server(self, tiny_scene_db):
        service = RetrievalService(tiny_scene_db)
        server = ReproServer(
            ServiceApp(service), port=0, read_timeout=0.4
        ).start()
        yield server
        server.stop()

    def test_stalled_body_gets_a_408_and_the_connection_closes(
        self, impatient_server
    ):
        import http.client

        connection = http.client.HTTPConnection(
            impatient_server.host, impatient_server.port, timeout=10
        )
        try:
            connection.putrequest("POST", "/v1/query")
            connection.putheader("Content-Length", "100")
            connection.putheader("Content-Type", "application/json")
            connection.endheaders()
            connection.send(b'{"kind": ')  # dribble a prefix, then stall
            response = connection.getresponse()
            assert response.status == 408
            body = json.loads(response.read())
            assert body["error"] == "DeadlineError"
            assert "9 of 100 bytes" in body["message"]
            assert response.getheader("Connection") == "close"
        finally:
            connection.close()

    def test_stalled_headers_get_the_connection_dropped(self, impatient_server):
        import socket

        with socket.create_connection(
            (impatient_server.host, impatient_server.port), timeout=10
        ) as raw:
            raw.sendall(b"POST /v1/query HTTP/1.1\r\nHost: x\r\nConte")
            raw.settimeout(5.0)
            # The server times the header read out and closes; a patient
            # recv sees EOF, not a hang.
            assert raw.recv(1024) == b""

    def test_prompt_body_is_unaffected_by_the_read_timeout(
        self, impatient_server, tiny_scene_db
    ):
        client = ReproClient(impatient_server.url)
        assert client.health()["status"] == "ok"
        query = _query(tiny_scene_db)
        result = client.query(query)
        assert len(result.ranking) == 5

    def test_invalid_read_timeout_rejected(self, tiny_scene_db):
        service = RetrievalService(tiny_scene_db)
        with pytest.raises(ServeError, match="read_timeout"):
            ReproServer(ServiceApp(service), port=0, read_timeout=0.0)


class TestClientDeadlines:
    def test_deadline_ms_is_stamped_and_enforced(self, server, tiny_scene_db):
        from repro.errors import DeadlineError

        client = ReproClient(server.url, deadline_ms=0.01)
        with pytest.raises(DeadlineError):
            client.rank(session="any")  # expires in transit -> 504

    def test_per_call_deadline_overrides_the_client_default(
        self, client, tiny_scene_db
    ):
        query = _query(tiny_scene_db)
        result = client.query(query, deadline_ms=60_000.0)
        assert len(result.ranking) == 5


class TestRestartOnSamePort:
    def test_allow_reuse_address_is_set(self, server):
        assert server._httpd.allow_reuse_address is True

    def test_restart_on_same_port(self, tiny_scene_db):
        """A fast restart must rebind the port the old server just left.

        Without SO_REUSEADDR the old socket lingers in TIME_WAIT (a client
        connection ensures there was traffic) and the rebind fails with
        EADDRINUSE.
        """
        service = RetrievalService(tiny_scene_db)
        first = ReproServer(ServiceApp(service), port=0).start()
        port = first.port
        assert ReproClient(first.url).health()["status"] == "ok"
        first.stop()
        second = ReproServer(ServiceApp(service), port=port).start()
        try:
            assert second.port == port
            assert ReproClient(second.url).health()["status"] == "ok"
        finally:
            second.stop()


class TestGracefulDrain:
    def test_stop_drains_in_flight_requests(self, tiny_scene_db):
        """stop() lets a request that is already being handled finish."""
        import threading
        import time as time_module

        release = threading.Event()

        class SlowApp(ServiceApp):
            def health(self) -> dict:
                release.set()
                time_module.sleep(0.5)
                return super().health()

        app = SlowApp(RetrievalService(tiny_scene_db))
        server = ReproServer(app, port=0).start()
        outcome: dict = {}

        def slow_call() -> None:
            try:
                outcome["health"] = ReproClient(server.url, timeout=10).health()
            except Exception as exc:  # noqa: BLE001 - recorded for the assert
                outcome["error"] = exc

        caller = threading.Thread(target=slow_call)
        caller.start()
        assert release.wait(5.0), "request never reached the app"
        server.stop(drain_timeout=5.0)
        caller.join(10.0)
        assert "error" not in outcome, f"request died mid-drain: {outcome.get('error')}"
        assert outcome["health"]["status"] == "ok"

    def test_stop_without_drain_does_not_hang(self, tiny_scene_db):
        server = ReproServer(ServiceApp(RetrievalService(tiny_scene_db)), port=0)
        server.start()
        server.stop(drain_timeout=0)  # nothing in flight; returns at once


class TestConcurrentLoad:
    N_CLIENTS = 8

    def test_no_cross_tenant_leakage_under_concurrency(self, tiny_scene_db):
        """Many threads hammering /v1/query + /v1/feedback on one server:
        every session only ever sees its own examples, tokens stay unique,
        and the store's session counters match the number of tenants."""
        from concurrent.futures import ThreadPoolExecutor

        service = RetrievalService(tiny_scene_db)
        app = ServiceApp(service)
        ids = tiny_scene_db.ids_in_category("waterfall")
        negs = tiny_scene_db.ids_in_category("field")
        n_clients = min(self.N_CLIENTS, len(ids))
        with ReproServer(app, port=0) as running:
            def tenant(i: int) -> dict:
                client = ReproClient(running.url, timeout=30)
                # Unique positive per tenant: any cross-tenant bleed is
                # visible as a foreign id in the echoed example lists.
                mine_pos = ids[i]
                mine_negs = [negs[(i + r) % len(negs)] for r in range(3)]
                created = client.feedback(
                    params=dict(_PARAMS), add_positive_ids=[mine_pos],
                    rank=False,
                )
                token = created["session"]
                rounds = [created]
                for neg in mine_negs:
                    rounds.append(
                        client.feedback(token, add_negative_ids=[neg], rank=False)
                    )
                result = client.query(
                    _query(tiny_scene_db, learner="random", params={"seed": i})
                )
                return {
                    "token": token,
                    "rounds": rounds,
                    "positive": mine_pos,
                    "negatives": mine_negs,
                    "n_ranked": len(result.ranking),
                }

            with ThreadPoolExecutor(max_workers=n_clients) as executor:
                tenants = list(executor.map(tenant, range(n_clients)))

            tokens = [t["token"] for t in tenants]
            assert len(set(tokens)) == n_clients, "session tokens collided"
            for t in tenants:
                for entry in t["rounds"]:
                    assert entry["session"] == t["token"]
                    # No other tenant's examples may ever appear here.
                    assert set(entry["positive_ids"]) == {t["positive"]}
                    assert set(entry["negative_ids"]) <= set(t["negatives"])
                final = t["rounds"][-1]
                assert list(final["negative_ids"]) == t["negatives"]
                assert t["n_ranked"] > 0
            stats = app.sessions.stats()
            assert stats["active"] == n_clients
            assert stats["created"] == n_clients


class TestCli:
    def test_build_server_from_db_snapshot(self, tiny_scene_db, tmp_path):
        path = save_database(tiny_scene_db, tmp_path / "db.npz")
        args = _build_parser().parse_args(
            ["serve", "--db", str(path), "--port", "0", "--warm", ""]
        )
        server = build_server(args)
        try:
            server.start()
            client = ReproClient(server.url)
            assert client.health()["n_images"] == len(tiny_scene_db)
        finally:
            server.stop()

    def test_client_query_command(self, tiny_scene_db, capsys):
        service = RetrievalService(tiny_scene_db)
        ids = tiny_scene_db.ids_in_category("waterfall")
        negs = tiny_scene_db.ids_in_category("field")
        with ReproServer(ServiceApp(service), port=0) as running:
            code = main(
                [
                    "client-query",
                    "--url", running.url,
                    "--positive", ",".join(ids[:2]),
                    "--negative", ",".join(negs[:2]),
                    "--scheme", "identical",
                    "--top-k", "5",
                ]
            )
        assert code == 0
        out = capsys.readouterr().out
        assert "top 5 matches" in out
        assert "ranked" in out

    def test_client_query_reports_server_errors(self, tiny_scene_db, capsys):
        service = RetrievalService(tiny_scene_db)
        with ReproServer(ServiceApp(service), port=0) as running:
            code = main(
                [
                    "client-query",
                    "--url", running.url,
                    "--positive", "does-not-exist",
                    "--scheme", "identical",
                ]
            )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_serve_requires_a_source(self, capsys):
        with pytest.raises(SystemExit):
            _build_parser().parse_args(["serve"])
