"""The deterministic fault-injection harness: seeded plans, the worker-side
injector, per-fault pool recovery, and the chaos soak's bit-identity claim."""

from __future__ import annotations

import time

import pytest

from repro.api.service import RetrievalService
from repro.datasets.synth import corpus_from_config
from repro.datasets.synth.config import ScenarioConfig
from repro.errors import CodecError, DatasetError
from repro.serve import codec
from repro.serve.workers import WorkerDispatchApp, WorkerPool
from repro.testing import (
    FAULT_KINDS,
    PLAN_VERSION,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    build_mix,
    run_chaos_soak,
)

_PARAMS = {"scheme": "identical", "max_iterations": 25, "seed": 5}
_CONFIG = ScenarioConfig(
    name="faults-test",
    mode="feature",
    categories=tuple(f"cat{i}" for i in range(6)),
    feature_dims=6,
    instances_per_bag=3,
    cluster_spread=0.2,
).with_total_bags(48)


@pytest.fixture(scope="module")
def packed():
    return corpus_from_config(_CONFIG)


@pytest.fixture(scope="module")
def local_service(packed):
    return RetrievalService(packed)


class TestFaultSpec:
    def test_valid_spec(self):
        spec = FaultSpec(kind="stall", worker=1, after_requests=3, seconds=2.0)
        assert spec.kind == "stall"
        assert spec.incarnation == 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"kind": "explode", "worker": 0},
            {"kind": "crash", "worker": -1},
            {"kind": "crash", "worker": 0, "after_requests": 0},
            {"kind": "stall", "worker": 0, "seconds": -1.0},
            {"kind": "crash", "worker": 0, "incarnation": -1},
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(DatasetError):
            FaultSpec(**kwargs)

    def test_wire_round_trip(self):
        spec = FaultSpec(kind="error", worker=2, after_requests=4,
                         endpoint="rank", incarnation=1)
        assert FaultSpec.from_wire(spec.to_wire()) == spec

    @pytest.mark.parametrize(
        "payload",
        ["nope", {}, {"kind": "crash"}, {"kind": "crash", "worker": "x"}],
    )
    def test_bad_wire_specs_are_codec_errors(self, payload):
        with pytest.raises((CodecError, DatasetError)):
            FaultSpec.from_wire(payload)


class TestFaultPlan:
    def test_generate_is_deterministic(self):
        first = FaultPlan.generate(11, n_workers=3, n_faults=8)
        second = FaultPlan.generate(11, n_workers=3, n_faults=8)
        assert first == second
        assert len(first) == 8
        assert FaultPlan.generate(12, n_workers=3, n_faults=8) != first

    def test_generate_covers_the_requested_kinds(self):
        plan = FaultPlan.generate(5, n_workers=2, n_faults=len(FAULT_KINDS))
        assert set(plan.counts()) == set(FAULT_KINDS)

    def test_generate_targets_stay_in_range(self):
        plan = FaultPlan.generate(3, n_workers=2, n_faults=20)
        assert all(0 <= spec.worker < 2 for spec in plan)

    def test_for_worker_filters_by_worker_and_incarnation(self):
        plan = FaultPlan(
            seed=0,
            faults=(
                FaultSpec(kind="crash", worker=0),
                FaultSpec(kind="stall", worker=1, seconds=1.0),
                FaultSpec(kind="error", worker=0, incarnation=1),
            ),
        )
        assert [s.kind for s in plan.for_worker(0)] == ["crash"]
        assert [s.kind for s in plan.for_worker(0, incarnation=1)] == ["error"]
        assert [s.kind for s in plan.for_worker(1)] == ["stall"]

    def test_wire_round_trip_and_version_gate(self):
        plan = FaultPlan.generate(9, n_workers=2, n_faults=4)
        wire = plan.to_wire()
        assert wire["version"] == PLAN_VERSION
        assert FaultPlan.from_wire(wire) == plan
        wrong = dict(wire)
        wrong["version"] = PLAN_VERSION + 1
        with pytest.raises(CodecError, match="version"):
            FaultPlan.from_wire(wrong)
        with pytest.raises(CodecError):
            FaultPlan.from_wire({"kind": "not_a_plan", "version": PLAN_VERSION})

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_workers": 0},
            {"n_workers": 2, "n_faults": -1},
            {"n_workers": 2, "kinds": ("explode",)},
        ],
    )
    def test_invalid_generate_args_rejected(self, kwargs):
        with pytest.raises(DatasetError):
            FaultPlan.generate(0, **kwargs)


class TestFaultInjector:
    def test_fires_at_the_armed_request_and_only_once(self):
        plan = FaultPlan(
            seed=0, faults=(FaultSpec(kind="crash", worker=0, after_requests=3),)
        )
        injector = FaultInjector(plan, worker_id=0)
        assert injector.before_dispatch("rank") is None
        assert injector.before_dispatch("rank") is None
        fired = injector.before_dispatch("rank")
        assert fired is not None and fired.kind == "crash"
        assert injector.before_dispatch("rank") is None
        assert injector.n_fired == 1

    def test_endpoint_filter(self):
        plan = FaultPlan(
            seed=0,
            faults=(FaultSpec(kind="error", worker=0, after_requests=1,
                              endpoint="rank"),),
        )
        injector = FaultInjector(plan, worker_id=0)
        assert injector.before_dispatch("query") is None
        fired = injector.before_dispatch("rank")
        assert fired is not None and fired.kind == "error"

    def test_other_workers_faults_ignored(self):
        plan = FaultPlan(
            seed=0, faults=(FaultSpec(kind="crash", worker=1),)
        )
        injector = FaultInjector(plan, worker_id=0)
        for _ in range(5):
            assert injector.before_dispatch("rank") is None

    def test_slow_start_accumulates_but_never_dispatch_fires(self):
        plan = FaultPlan(
            seed=0,
            faults=(
                FaultSpec(kind="slow_start", worker=0, seconds=0.01),
                FaultSpec(kind="slow_start", worker=0, seconds=0.02),
            ),
        )
        injector = FaultInjector(plan, worker_id=0)
        assert injector.slow_start_seconds == pytest.approx(0.03)
        assert injector.before_dispatch("rank") is None


def _query_payload(packed, top_k: int = 5) -> dict:
    return codec.envelope(
        "query",
        {
            "positive_ids": list(packed.image_ids[:2]),
            "negative_ids": list(packed.image_ids[10:11]),
            "learner": "dd",
            "params": dict(_PARAMS),
            "candidate_ids": None,
            "top_k": top_k,
            "category_filter": None,
            "query_id": "faults-test",
        },
    )


class TestPoolIntegration:
    def test_crash_fault_costs_one_retryable_500_then_recovers(
        self, local_service, packed
    ):
        plan = FaultPlan(
            seed=0, faults=(FaultSpec(kind="crash", worker=0, after_requests=1),)
        )
        with WorkerPool.from_service(local_service, 1, fault_plan=plan) as pool:
            app = WorkerDispatchApp(pool)
            status, reply = app.handle("query", _query_payload(packed))
            assert status == 500
            assert reply["retryable"] is True
            assert pool.n_restarts == 1
            assert pool.resilience.get("crash_restarts") == 1
            status, reply = app.handle("query", _query_payload(packed))
            assert status == 200, reply

    def test_error_fault_is_a_retryable_500_without_a_restart(
        self, local_service, packed
    ):
        plan = FaultPlan(
            seed=0, faults=(FaultSpec(kind="error", worker=0, after_requests=1),)
        )
        with WorkerPool.from_service(local_service, 1, fault_plan=plan) as pool:
            app = WorkerDispatchApp(pool)
            status, reply = app.handle("query", _query_payload(packed))
            assert status == 500
            assert "injected" in reply["message"]
            assert reply["retryable"] is True
            assert pool.n_restarts == 0
            status, reply = app.handle("query", _query_payload(packed))
            assert status == 200, reply

    def test_corrupt_reply_counts_and_restarts_the_worker(
        self, local_service, packed
    ):
        plan = FaultPlan(
            seed=0,
            faults=(FaultSpec(kind="corrupt", worker=0, after_requests=1),),
        )
        with WorkerPool.from_service(local_service, 1, fault_plan=plan) as pool:
            app = WorkerDispatchApp(pool)
            status, reply = app.handle("query", _query_payload(packed))
            assert status == 500
            assert reply["retryable"] is True
            assert pool.resilience.get("corrupt_replies") == 1
            assert pool.n_restarts == 1
            status, reply = app.handle("query", _query_payload(packed))
            assert status == 200, reply

    def test_slow_start_fault_only_delays_readiness(self, local_service, packed):
        plan = FaultPlan(
            seed=0,
            faults=(FaultSpec(kind="slow_start", worker=0, seconds=0.3),),
        )
        started = time.monotonic()
        with WorkerPool.from_service(local_service, 1, fault_plan=plan) as pool:
            assert time.monotonic() - started >= 0.3
            app = WorkerDispatchApp(pool)
            status, reply = app.handle("query", _query_payload(packed))
            assert status == 200, reply
            assert pool.n_restarts == 0

    def test_restarted_worker_comes_back_clean(self, local_service, packed):
        """Faults are gated per incarnation: a replacement worker does not
        re-arm incarnation-0 faults, so a finite plan always drains."""
        plan = FaultPlan(
            seed=0,
            faults=(
                FaultSpec(kind="crash", worker=0, after_requests=1),
                FaultSpec(kind="crash", worker=0, after_requests=1),
            ),
        )
        with WorkerPool.from_service(local_service, 1, fault_plan=plan) as pool:
            app = WorkerDispatchApp(pool)
            status, _ = app.handle("query", _query_payload(packed))
            assert status == 500
            # Both crash specs armed for incarnation 0 at request 1; the
            # replacement (incarnation 1) must not fire either of them.
            for _ in range(3):
                status, reply = app.handle("query", _query_payload(packed))
                assert status == 200, reply
            assert pool.n_restarts == 1


class TestChaosSoak:
    def test_build_mix_is_deterministic(self, local_service):
        first = build_mix(local_service, n_requests=9, seed=3)
        second = build_mix(local_service, n_requests=9, seed=3)
        assert first == second
        assert {item["kind"] for item in first} == {"rank", "query", "feedback"}
        assert build_mix(local_service, n_requests=9, seed=4) != first

    def test_soak_under_faults_stays_bit_identical(self, local_service):
        plan = FaultPlan(
            seed=0,
            faults=(
                FaultSpec(kind="crash", worker=0, after_requests=2),
                FaultSpec(kind="stall", worker=1, after_requests=3,
                          seconds=20.0),
                FaultSpec(kind="corrupt", worker=0, after_requests=2,
                          incarnation=1),
                FaultSpec(kind="error", worker=1, after_requests=1,
                          incarnation=1),
            ),
        )
        report = run_chaos_soak(
            local_service,
            n_workers=2,
            seed=7,
            n_requests=9,
            deadline_ms=3000.0,
            plan=plan,
            min_scatter_bags=1,
        )
        assert report.ok, (report.mismatches, report.resilience)
        assert report.mismatches == []
        assert report.n_failures == 0
        assert report.baseline_failures == 0
        assert report.n_restarts >= 1
        # The stall resolved by deadline expiry, never by waiting it out.
        assert report.max_attempt_seconds < 15.0
        assert report.resilience["restarts"] == report.n_restarts
