"""Unit tests for the retrieval kernels, packed corpora and ranking results."""

import numpy as np
import pytest

from repro.core.concept import LearnedConcept
from repro.core.retrieval import (
    PackedCorpus,
    RankedImage,
    Ranker,
    RetrievalCandidate,
    RetrievalEngine,
    RetrievalResult,
    packed_view,
)
from repro.errors import DatabaseError


def concept_at(point: np.ndarray) -> LearnedConcept:
    return LearnedConcept(t=point, w=np.ones(point.size), nll=0.0)


def candidate(image_id: str, category: str, *vectors) -> RetrievalCandidate:
    return RetrievalCandidate(
        image_id=image_id, category=category, instances=np.array(vectors, dtype=float)
    )


@pytest.fixture()
def corpus():
    return [
        candidate("close", "target", [0.1, 0.0], [5.0, 5.0]),
        candidate("mid", "other", [1.0, 1.0], [3.0, 3.0]),
        candidate("far", "other", [4.0, 4.0]),
        candidate("closest", "target", [0.0, 0.05]),
    ]


class TestEngine:
    def test_orders_by_min_instance_distance(self, corpus):
        result = RetrievalEngine().rank(concept_at(np.zeros(2)), corpus)
        assert result.image_ids == ("closest", "close", "mid", "far")

    def test_distances_nondecreasing(self, corpus):
        result = RetrievalEngine().rank(concept_at(np.zeros(2)), corpus)
        distances = result.distances
        assert np.all(np.diff(distances) >= -1e-12)

    def test_min_not_mean_instance_used(self):
        # An image with one great instance and many bad ones must beat an
        # image with uniformly mediocre instances.
        items = [
            candidate("one-good", "a", [0.0, 0.0], [9.0, 9.0], [9.0, -9.0]),
            candidate("all-okay", "b", [1.0, 1.0], [1.0, -1.0]),
        ]
        result = RetrievalEngine().rank(concept_at(np.zeros(2)), items)
        assert result.image_ids[0] == "one-good"

    def test_exclude_removes_ids(self, corpus):
        result = RetrievalEngine().rank(
            concept_at(np.zeros(2)), corpus, exclude=["closest", "far"]
        )
        assert result.image_ids == ("close", "mid")

    def test_ties_broken_by_id(self):
        items = [
            candidate("b", "x", [1.0, 0.0]),
            candidate("a", "x", [0.0, 1.0]),
        ]
        result = RetrievalEngine().rank(concept_at(np.zeros(2)), items)
        assert result.image_ids == ("a", "b")

    def test_weighted_distance_respected(self):
        concept = LearnedConcept(
            t=np.zeros(2), w=np.array([100.0, 0.01]), nll=0.0
        )
        items = [
            candidate("off-axis-0", "x", [0.5, 0.0]),
            candidate("off-axis-1", "x", [0.0, 0.5]),
        ]
        result = RetrievalEngine().rank(concept, items)
        assert result.image_ids[0] == "off-axis-1"

    def test_empty_corpus_gives_empty_result(self):
        result = RetrievalEngine().rank(concept_at(np.zeros(2)), [])
        assert len(result) == 0

    def test_duplicate_candidate_ids_still_rank(self):
        # The columnar representation cannot hold duplicate ids; the
        # compatibility engine falls back to the reference loop for them.
        items = [
            candidate("twin", "x", [1.0, 0.0]),
            candidate("twin", "x", [0.0, 2.0]),
            candidate("solo", "x", [3.0, 3.0]),
        ]
        result = RetrievalEngine().rank(concept_at(np.zeros(2)), items)
        assert result.image_ids == ("twin", "twin", "solo")


class TestPackedCorpus:
    def make_packed(self) -> PackedCorpus:
        return PackedCorpus.pack(
            image_ids=["a", "b", "c"],
            categories=["x", "y", "x"],
            matrices=[
                np.zeros((2, 3)),
                np.ones((1, 3)),
                np.full((4, 3), 2.0),
            ],
        )

    def test_shapes(self):
        packed = self.make_packed()
        assert packed.n_bags == len(packed) == 3
        assert packed.n_instances == 7
        assert packed.n_dims == 3
        assert list(packed.lengths) == [2, 1, 4]
        assert list(packed.offsets) == [0, 2, 3, 7]

    def test_bag_instances_views(self):
        packed = self.make_packed()
        np.testing.assert_array_equal(packed.bag_instances("b"), np.ones((1, 3)))
        with pytest.raises(DatabaseError, match="unknown image id"):
            packed.bag_instances("nope")

    def test_contains(self):
        packed = self.make_packed()
        assert "a" in packed and "nope" not in packed

    def test_candidates_round_trip(self):
        packed = self.make_packed()
        rebuilt = PackedCorpus.from_candidates(packed.candidates())
        assert rebuilt.image_ids == packed.image_ids
        assert rebuilt.categories == packed.categories
        np.testing.assert_array_equal(rebuilt.instances, packed.instances)
        np.testing.assert_array_equal(rebuilt.offsets, packed.offsets)

    def test_select_preserves_order_and_rows(self):
        packed = self.make_packed()
        subset = packed.select(["c", "a"])
        assert subset.image_ids == ("c", "a")
        assert subset.categories == ("x", "x")
        np.testing.assert_array_equal(subset.bag_instances("c"), np.full((4, 3), 2.0))
        np.testing.assert_array_equal(subset.bag_instances("a"), np.zeros((2, 3)))

    def test_select_unknown_id(self):
        with pytest.raises(DatabaseError, match="unknown image id"):
            self.make_packed().select(["a", "nope"])

    def test_select_empty(self):
        subset = self.make_packed().select([])
        assert subset.n_bags == 0
        assert subset.n_dims == 3

    def test_empty_pack(self):
        packed = PackedCorpus.pack([], [], [])
        assert packed.n_bags == 0 and packed.n_instances == 0

    def test_duplicate_ids_rejected(self):
        with pytest.raises(DatabaseError, match="duplicate"):
            PackedCorpus.pack(
                ["a", "a"], ["x", "x"], [np.zeros((1, 2)), np.ones((1, 2))]
            )

    def test_mismatched_dims_rejected(self):
        with pytest.raises(DatabaseError, match="dims"):
            PackedCorpus.pack(
                ["a", "b"], ["x", "x"], [np.zeros((1, 2)), np.ones((1, 3))]
            )

    def test_empty_bag_rejected(self):
        with pytest.raises(DatabaseError):
            PackedCorpus.pack(["a"], ["x"], [np.zeros((0, 2))])

    def test_bad_offsets_rejected(self):
        with pytest.raises(DatabaseError):
            PackedCorpus(
                instances=np.zeros((2, 2)),
                offsets=np.array([0, 1]),  # does not span the matrix
                image_ids=("a",),
                categories=("x",),
            )

    def test_immutable(self):
        packed = self.make_packed()
        with pytest.raises(AttributeError):
            packed.instances = np.zeros((1, 1))

    def test_min_distances_dimension_mismatch(self):
        packed = self.make_packed()
        concept = LearnedConcept(t=np.zeros(5), w=np.ones(5), nll=0.0)
        with pytest.raises(DatabaseError, match="dims"):
            packed.min_distances(concept)

    def test_min_distances_matches_bag_distance(self):
        packed = self.make_packed()
        concept = LearnedConcept(
            t=np.array([1.0, 0.0, 2.0]), w=np.array([1.0, 0.5, 2.0]), nll=0.0
        )
        batch = packed.min_distances(concept)
        for index, image_id in enumerate(packed.image_ids):
            expected = concept.bag_distance(packed.bag_instances(image_id))
            assert batch[index] == pytest.approx(expected, rel=1e-12)

    def test_coerce_spellings(self, corpus):
        from_list = PackedCorpus.coerce(corpus)
        assert from_list.image_ids == tuple(c.image_id for c in corpus)
        assert PackedCorpus.coerce(from_list) is from_list

    def test_packed_view_falls_back_to_candidates(self):
        class LegacyCorpus:
            def retrieval_candidates(self, ids):
                return [
                    RetrievalCandidate(
                        image_id=i, category="x", instances=np.zeros((1, 2))
                    )
                    for i in ids
                ]

        packed = packed_view(LegacyCorpus(), ["p", "q"])
        assert packed.image_ids == ("p", "q")

    def test_packed_view_selects_from_packed_corpus(self):
        packed = self.make_packed()
        assert packed_view(packed) is packed
        assert packed_view(packed, ["b"]).image_ids == ("b",)


class TestRanker:
    def test_top_k_truncates_and_reports_total(self, corpus):
        result = Ranker().rank(concept_at(np.zeros(2)), corpus, top_k=2)
        assert result.image_ids == ("closest", "close")
        assert len(result) == 2
        assert result.total_candidates == 4
        assert result.is_truncated

    def test_top_k_larger_than_corpus(self, corpus):
        result = Ranker().rank(concept_at(np.zeros(2)), corpus, top_k=99)
        assert len(result) == 4
        assert not result.is_truncated

    def test_invalid_top_k(self, corpus):
        with pytest.raises(DatabaseError, match="top_k"):
            Ranker().rank(concept_at(np.zeros(2)), corpus, top_k=0)

    def test_category_filter(self, corpus):
        result = Ranker().rank(
            concept_at(np.zeros(2)), corpus, category_filter="target"
        )
        assert result.image_ids == ("closest", "close")
        assert result.total_candidates == 2

    def test_category_filter_with_exclude_and_top_k(self, corpus):
        result = Ranker().rank(
            concept_at(np.zeros(2)),
            corpus,
            category_filter="other",
            exclude=["far"],
            top_k=1,
        )
        assert result.image_ids == ("mid",)
        assert result.total_candidates == 1

    def test_unmatched_filter_gives_empty_result(self, corpus):
        result = Ranker().rank(
            concept_at(np.zeros(2)), corpus, category_filter="nope"
        )
        assert len(result) == 0
        assert result.total_candidates == 0

    def test_accepts_packed_corpus(self, corpus):
        packed = PackedCorpus.from_candidates(corpus)
        result = Ranker().rank(concept_at(np.zeros(2)), packed)
        assert result.image_ids == ("closest", "close", "mid", "far")


class TestRetrievalResult:
    def make_result(self) -> RetrievalResult:
        return RetrievalResult(
            [
                RankedImage(0, "a", "target", 0.1),
                RankedImage(1, "b", "other", 0.2),
                RankedImage(2, "c", "target", 0.3),
                RankedImage(3, "d", "other", 0.4),
            ]
        )

    def test_rank_consistency_enforced(self):
        with pytest.raises(DatabaseError):
            RetrievalResult([RankedImage(1, "a", "x", 0.0)])

    def test_top(self):
        result = self.make_result()
        assert [e.image_id for e in result.top(2)] == ["a", "b"]
        assert result.top(0) == ()
        with pytest.raises(DatabaseError):
            result.top(-1)

    def test_relevance_mask(self):
        result = self.make_result()
        np.testing.assert_array_equal(
            result.relevance("target"), [True, False, True, False]
        )

    def test_false_positives(self):
        result = self.make_result()
        fps = result.false_positives("target", limit=5)
        assert [e.image_id for e in fps] == ["b", "d"]

    def test_false_positives_limit(self):
        result = self.make_result()
        fps = result.false_positives("target", limit=1)
        assert [e.image_id for e in fps] == ["b"]

    def test_false_positives_exclude(self):
        result = self.make_result()
        fps = result.false_positives("target", limit=5, exclude=["b"])
        assert [e.image_id for e in fps] == ["d"]

    def test_false_positives_negative_limit(self):
        with pytest.raises(DatabaseError):
            self.make_result().false_positives("target", limit=-1)

    def test_precision_at(self):
        result = self.make_result()
        assert result.precision_at(1, "target") == pytest.approx(1.0)
        assert result.precision_at(2, "target") == pytest.approx(0.5)
        assert result.precision_at(4, "target") == pytest.approx(0.5)

    def test_precision_at_invalid_k(self):
        with pytest.raises(DatabaseError):
            self.make_result().precision_at(0, "target")

    def test_top_beyond_length_returns_everything(self):
        # k past the end never invents entries and never raises — complete
        # or truncated, `top` returns what is there.
        result = self.make_result()
        assert [e.image_id for e in result.top(99)] == ["a", "b", "c", "d"]
        truncated = result.truncate(2)
        assert [e.image_id for e in truncated.top(99)] == ["a", "b"]

    def test_precision_beyond_complete_ranking_uses_full_ranking(self):
        # On a complete ranking there is nothing below the end, so
        # precision@99 equals precision over the full ranking.
        result = self.make_result()
        assert result.precision_at(99, "target") == pytest.approx(0.5)

    def test_precision_beyond_truncated_prefix_raises(self):
        # On a truncated ranking the tail is unknown; guessing would be
        # silently wrong, so the helper refuses.
        truncated = self.make_result().truncate(2)
        assert truncated.precision_at(2, "target") == pytest.approx(0.5)
        with pytest.raises(DatabaseError, match="truncated"):
            truncated.precision_at(3, "target")

    def test_truncate_preserves_total_candidates(self):
        result = self.make_result()
        truncated = result.truncate(2)
        assert len(truncated) == 2
        assert truncated.total_candidates == 4
        assert truncated.is_truncated
        assert not result.is_truncated
        assert result.truncate(None) is result
        assert result.truncate(10) is result
        with pytest.raises(DatabaseError):
            result.truncate(-1)

    def test_total_candidates_validation(self):
        with pytest.raises(DatabaseError, match="total_candidates"):
            RetrievalResult(
                [RankedImage(0, "a", "x", 0.0)], total_candidates=0
            )

    def test_truncated_repr(self):
        assert "top 2 of 4" in repr(self.make_result().truncate(2))

    def test_iteration(self):
        result = self.make_result()
        assert [e.image_id for e in result] == ["a", "b", "c", "d"]
        assert len(result) == 4

    def test_repr(self):
        assert "4 images" in repr(self.make_result())
