"""Unit tests for the retrieval engine and ranking results."""

import numpy as np
import pytest

from repro.core.concept import LearnedConcept
from repro.core.retrieval import (
    RankedImage,
    RetrievalCandidate,
    RetrievalEngine,
    RetrievalResult,
)
from repro.errors import DatabaseError


def concept_at(point: np.ndarray) -> LearnedConcept:
    return LearnedConcept(t=point, w=np.ones(point.size), nll=0.0)


def candidate(image_id: str, category: str, *vectors) -> RetrievalCandidate:
    return RetrievalCandidate(
        image_id=image_id, category=category, instances=np.array(vectors, dtype=float)
    )


@pytest.fixture()
def corpus():
    return [
        candidate("close", "target", [0.1, 0.0], [5.0, 5.0]),
        candidate("mid", "other", [1.0, 1.0], [3.0, 3.0]),
        candidate("far", "other", [4.0, 4.0]),
        candidate("closest", "target", [0.0, 0.05]),
    ]


class TestEngine:
    def test_orders_by_min_instance_distance(self, corpus):
        result = RetrievalEngine().rank(concept_at(np.zeros(2)), corpus)
        assert result.image_ids == ("closest", "close", "mid", "far")

    def test_distances_nondecreasing(self, corpus):
        result = RetrievalEngine().rank(concept_at(np.zeros(2)), corpus)
        distances = result.distances
        assert np.all(np.diff(distances) >= -1e-12)

    def test_min_not_mean_instance_used(self):
        # An image with one great instance and many bad ones must beat an
        # image with uniformly mediocre instances.
        items = [
            candidate("one-good", "a", [0.0, 0.0], [9.0, 9.0], [9.0, -9.0]),
            candidate("all-okay", "b", [1.0, 1.0], [1.0, -1.0]),
        ]
        result = RetrievalEngine().rank(concept_at(np.zeros(2)), items)
        assert result.image_ids[0] == "one-good"

    def test_exclude_removes_ids(self, corpus):
        result = RetrievalEngine().rank(
            concept_at(np.zeros(2)), corpus, exclude=["closest", "far"]
        )
        assert result.image_ids == ("close", "mid")

    def test_ties_broken_by_id(self):
        items = [
            candidate("b", "x", [1.0, 0.0]),
            candidate("a", "x", [0.0, 1.0]),
        ]
        result = RetrievalEngine().rank(concept_at(np.zeros(2)), items)
        assert result.image_ids == ("a", "b")

    def test_weighted_distance_respected(self):
        concept = LearnedConcept(
            t=np.zeros(2), w=np.array([100.0, 0.01]), nll=0.0
        )
        items = [
            candidate("off-axis-0", "x", [0.5, 0.0]),
            candidate("off-axis-1", "x", [0.0, 0.5]),
        ]
        result = RetrievalEngine().rank(concept, items)
        assert result.image_ids[0] == "off-axis-1"

    def test_empty_corpus_gives_empty_result(self):
        result = RetrievalEngine().rank(concept_at(np.zeros(2)), [])
        assert len(result) == 0


class TestRetrievalResult:
    def make_result(self) -> RetrievalResult:
        return RetrievalResult(
            [
                RankedImage(0, "a", "target", 0.1),
                RankedImage(1, "b", "other", 0.2),
                RankedImage(2, "c", "target", 0.3),
                RankedImage(3, "d", "other", 0.4),
            ]
        )

    def test_rank_consistency_enforced(self):
        with pytest.raises(DatabaseError):
            RetrievalResult([RankedImage(1, "a", "x", 0.0)])

    def test_top(self):
        result = self.make_result()
        assert [e.image_id for e in result.top(2)] == ["a", "b"]
        assert result.top(0) == ()
        with pytest.raises(DatabaseError):
            result.top(-1)

    def test_relevance_mask(self):
        result = self.make_result()
        np.testing.assert_array_equal(
            result.relevance("target"), [True, False, True, False]
        )

    def test_false_positives(self):
        result = self.make_result()
        fps = result.false_positives("target", limit=5)
        assert [e.image_id for e in fps] == ["b", "d"]

    def test_false_positives_limit(self):
        result = self.make_result()
        fps = result.false_positives("target", limit=1)
        assert [e.image_id for e in fps] == ["b"]

    def test_false_positives_exclude(self):
        result = self.make_result()
        fps = result.false_positives("target", limit=5, exclude=["b"])
        assert [e.image_id for e in fps] == ["d"]

    def test_false_positives_negative_limit(self):
        with pytest.raises(DatabaseError):
            self.make_result().false_positives("target", limit=-1)

    def test_precision_at(self):
        result = self.make_result()
        assert result.precision_at(1, "target") == pytest.approx(1.0)
        assert result.precision_at(2, "target") == pytest.approx(0.5)
        assert result.precision_at(4, "target") == pytest.approx(0.5)

    def test_precision_at_invalid_k(self):
        with pytest.raises(DatabaseError):
            self.make_result().precision_at(0, "target")

    def test_iteration(self):
        result = self.make_result()
        assert [e.image_id for e in result] == ["a", "b", "c", "d"]
        assert len(result) == 4

    def test_repr(self):
        assert "4 images" in repr(self.make_result())
