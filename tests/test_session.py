"""Unit tests for the RetrievalSession facade."""

import pytest

from repro.errors import DatabaseError, TrainingError
from repro.session import RetrievalSession


@pytest.fixture()
def session(tiny_scene_db) -> RetrievalSession:
    return RetrievalSession(
        tiny_scene_db, scheme="identical", max_iterations=40, seed=4
    )


class TestExampleManagement:
    def test_manual_examples(self, session, tiny_scene_db):
        ids = tiny_scene_db.ids_in_category("waterfall")
        session.add_positive(ids[0])
        session.add_negative(tiny_scene_db.ids_in_category("field")[0])
        assert session.positive_ids == (ids[0],)
        assert len(session.negative_ids) == 1

    def test_unknown_id_rejected(self, session):
        with pytest.raises(DatabaseError):
            session.add_positive("no-such-image")

    def test_double_claim_rejected(self, session, tiny_scene_db):
        image_id = tiny_scene_db.ids_in_category("waterfall")[0]
        session.add_positive(image_id)
        with pytest.raises(DatabaseError):
            session.add_negative(image_id)

    def test_add_examples_bulk(self, session):
        session.add_examples("waterfall", n_positive=3, n_negative=3)
        assert len(session.positive_ids) == 3
        assert len(session.negative_ids) == 3

    def test_seeded_selection_deterministic(self, tiny_scene_db):
        a = RetrievalSession(tiny_scene_db, scheme="identical", seed=9)
        b = RetrievalSession(tiny_scene_db, scheme="identical", seed=9)
        a.add_examples("waterfall", 3, 3)
        b.add_examples("waterfall", 3, 3)
        assert a.positive_ids == b.positive_ids


class TestTrainingAndRanking:
    def test_train_requires_positives(self, session):
        with pytest.raises(TrainingError):
            session.train()

    def test_concept_requires_training(self, session):
        session.add_examples("waterfall", 2, 2)
        with pytest.raises(TrainingError):
            session.concept

    def test_train_and_rank(self, session, tiny_scene_db):
        session.add_examples("waterfall", 3, 3)
        result = session.train_and_rank()
        assert len(result) == len(tiny_scene_db) - 6
        assert session.concept.n_dims == 36

    def test_examples_excluded_from_ranking(self, session):
        session.add_examples("waterfall", 3, 3)
        result = session.train_and_rank()
        ranked = set(result.image_ids)
        assert not ranked & (set(session.positive_ids) | set(session.negative_ids))

    def test_adding_example_invalidates_concept(self, session, tiny_scene_db):
        session.add_examples("waterfall", 2, 2)
        session.train()
        _ = session.concept
        session.add_negative(tiny_scene_db.ids_in_category("mountain")[0])
        with pytest.raises(TrainingError):
            session.concept

    def test_mark_false_positives(self, session):
        session.add_examples("waterfall", 2, 2)
        result = session.train_and_rank()
        bad = [e.image_id for e in result.top(3) if e.category != "waterfall"]
        session.mark_false_positives(bad)
        assert set(bad) <= set(session.negative_ids)

    def test_rank_subset(self, session, tiny_scene_db):
        session.add_examples("waterfall", 2, 2)
        session.train()
        subset = tiny_scene_db.ids_in_category("sunset")
        result = session.rank(subset)
        assert set(result.image_ids) <= set(subset)

    def test_rank_top_k(self, session, tiny_scene_db):
        session.add_examples("waterfall", 3, 3)
        full = session.train_and_rank()
        truncated = session.rank(top_k=5)
        assert truncated.image_ids == full.image_ids[:5]
        assert truncated.total_candidates == len(full)
        assert truncated.is_truncated

    def test_rank_category_filter(self, session, tiny_scene_db):
        session.add_examples("waterfall", 2, 2)
        result = session.train_and_rank(category_filter="sunset")
        assert all(e.category == "sunset" for e in result)
        examples = set(session.positive_ids) | set(session.negative_ids)
        expected = [
            i for i in tiny_scene_db.ids_in_category("sunset")
            if i not in examples
        ]
        assert result.total_candidates == len(expected)


class TestMarkFalsePositivesAtomicity:
    def test_unknown_id_applies_nothing(self, session, tiny_scene_db):
        session.add_examples("waterfall", 2, 2)
        before = session.negative_ids
        good = tiny_scene_db.ids_in_category("field")[2]
        with pytest.raises(DatabaseError):
            session.mark_false_positives([good, "no-such-image"])
        assert session.negative_ids == before  # the valid id was not applied

    def test_existing_example_applies_nothing(self, session, tiny_scene_db):
        session.add_examples("waterfall", 2, 2)
        before = session.negative_ids
        good = tiny_scene_db.ids_in_category("field")[2]
        with pytest.raises(DatabaseError):
            session.mark_false_positives([good, session.positive_ids[0]])
        assert session.negative_ids == before

    def test_duplicate_in_batch_applies_nothing(self, session, tiny_scene_db):
        session.add_examples("waterfall", 2, 2)
        before = session.negative_ids
        good = tiny_scene_db.ids_in_category("field")[2]
        with pytest.raises(DatabaseError):
            session.mark_false_positives([good, good])
        assert session.negative_ids == before

    def test_failed_feedback_keeps_concept_fresh(self, session, tiny_scene_db):
        session.add_examples("waterfall", 2, 2)
        session.train()
        with pytest.raises(DatabaseError):
            session.mark_false_positives(["no-such-image"])
        _ = session.concept  # still available: nothing changed

    def test_valid_batch_applies_all(self, session, tiny_scene_db):
        session.add_examples("waterfall", 2, 2)
        additions = [
            i for i in tiny_scene_db.ids_in_category("field")
            if i not in session.negative_ids
        ][:2]
        session.mark_false_positives(additions)
        assert set(additions) <= set(session.negative_ids)
