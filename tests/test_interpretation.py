"""Unit tests for concept interpretation (Ch. 5 future work)."""

import numpy as np
import pytest

from repro.core.concept import LearnedConcept
from repro.core.interpretation import (
    RegionMatch,
    consensus_region,
    explain_bag,
    weight_saliency,
)
from repro.errors import TrainingError
from repro.imaging.features import FeatureSet, InstanceSource


def feature_set(vectors: np.ndarray, names: list[str]) -> FeatureSet:
    sources = tuple(
        InstanceSource(region_index=i, region_name=name, mirrored=False)
        for i, name in enumerate(names)
    )
    return FeatureSet(vectors=vectors, sources=sources)


class TestExplainBag:
    def test_names_closest_region(self):
        concept = LearnedConcept(t=np.zeros(3), w=np.ones(3), nll=0.0)
        features = feature_set(
            np.array([[5.0, 0, 0], [0.1, 0, 0], [2.0, 2.0, 0]]),
            ["full", "half-top", "quadrant-nw"],
        )
        match = explain_bag(concept, features)
        assert match.region_name == "half-top"
        assert match.distance == pytest.approx(0.01)
        assert match.ranking[0] == "half-top"
        assert match.ranking[-1] == "full"

    def test_margin_computed(self):
        concept = LearnedConcept(t=np.zeros(2), w=np.ones(2), nll=0.0)
        features = feature_set(
            np.array([[1.0, 0.0], [2.0, 0.0]]), ["a", "b"]
        )
        match = explain_bag(concept, features)
        assert match.margin == pytest.approx(3.0)  # 4 - 1

    def test_single_instance_margin_infinite(self):
        concept = LearnedConcept(t=np.zeros(2), w=np.ones(2), nll=0.0)
        features = feature_set(np.array([[1.0, 0.0]]), ["only"])
        assert explain_bag(concept, features).margin == float("inf")

    def test_dimension_mismatch_raises(self):
        concept = LearnedConcept(t=np.zeros(4), w=np.ones(4), nll=0.0)
        features = feature_set(np.zeros((2, 3)), ["a", "b"])
        with pytest.raises(TrainingError):
            explain_bag(concept, features)

    def test_on_real_pipeline(self, tiny_scene_db):
        # The winning region must be one of the image's actual regions.
        from repro.bags.bag import BagSet
        from repro.core.diverse_density import DiverseDensityTrainer, TrainerConfig

        bag_set = BagSet()
        for image_id in tiny_scene_db.ids_in_category("waterfall")[:3]:
            bag_set.add(tiny_scene_db.bag_for(image_id, label=True))
        for image_id in tiny_scene_db.ids_in_category("field")[:2]:
            bag_set.add(tiny_scene_db.bag_for(image_id, label=False))
        concept = (
            DiverseDensityTrainer(TrainerConfig(scheme="identical", max_iterations=40))
            .train(bag_set)
            .concept
        )
        record = tiny_scene_db.record(tiny_scene_db.ids_in_category("waterfall")[0])
        features = record.features(tiny_scene_db.generator)
        match = explain_bag(concept, features)
        valid_names = {source.describe() for source in features.sources}
        assert match.region_name in valid_names


class TestWeightSaliency:
    def test_uniform_weights(self):
        concept = LearnedConcept(t=np.zeros(9), w=np.ones(9), nll=0.0)
        saliency = weight_saliency(concept)
        np.testing.assert_allclose(saliency.row_marginals, 1 / 3)
        np.testing.assert_allclose(saliency.col_marginals, 1 / 3)

    def test_spike_detected(self):
        w = np.full(100, 1e-6)
        w[34] = 5.0  # row 3, col 4
        concept = LearnedConcept(t=np.zeros(100), w=w, nll=0.0)
        saliency = weight_saliency(concept)
        row, col, weight = saliency.top_cells[0]
        assert (row, col) == (3, 4)
        assert weight == pytest.approx(5.0)
        assert saliency.concentration > 0.99

    def test_concentration_low_for_uniform(self):
        concept = LearnedConcept(t=np.zeros(100), w=np.ones(100), nll=0.0)
        assert weight_saliency(concept).concentration == pytest.approx(0.1)

    def test_marginals_sum_to_one(self):
        rng = np.random.default_rng(0)
        concept = LearnedConcept(t=np.zeros(16), w=rng.uniform(0, 1, 16), nll=0.0)
        saliency = weight_saliency(concept)
        assert saliency.row_marginals.sum() == pytest.approx(1.0)
        assert saliency.col_marginals.sum() == pytest.approx(1.0)

    def test_zero_weight_rejected(self):
        concept = LearnedConcept(t=np.zeros(9), w=np.zeros(9), nll=0.0)
        with pytest.raises(TrainingError):
            weight_saliency(concept)

    def test_non_square_rejected(self):
        concept = LearnedConcept(t=np.zeros(8), w=np.ones(8), nll=0.0)
        with pytest.raises(TrainingError):
            weight_saliency(concept)

    def test_top_k_respected(self):
        concept = LearnedConcept(t=np.zeros(16), w=np.ones(16), nll=0.0)
        assert len(weight_saliency(concept, top_k=3).top_cells) == 3


class TestConsensusRegion:
    def test_counts_votes_and_strips_mirrors(self):
        concept = LearnedConcept(t=np.zeros(2), w=np.ones(2), nll=0.0)
        near = np.array([[0.1, 0.0], [9.0, 9.0]])
        sets = {
            "img-a": FeatureSet(
                vectors=near,
                sources=(
                    InstanceSource(0, "half-top", True),
                    InstanceSource(1, "full", False),
                ),
            ),
            "img-b": FeatureSet(
                vectors=near,
                sources=(
                    InstanceSource(0, "half-top", False),
                    InstanceSource(1, "full", False),
                ),
            ),
        }
        votes = consensus_region(concept, sets)
        assert votes == {"half-top": 2}

    def test_sorted_by_count(self):
        concept = LearnedConcept(t=np.zeros(2), w=np.ones(2), nll=0.0)
        sets = {}
        for index, name in enumerate(["a", "b", "b"]):
            sets[f"img-{index}"] = FeatureSet(
                vectors=np.array([[0.0, 0.0]]),
                sources=(InstanceSource(0, name, False),),
            )
        votes = consensus_region(concept, sets)
        assert list(votes) == ["b", "a"]
