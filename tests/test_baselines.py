"""Unit tests for the Maron-Ratan colour baseline and sanity rankers."""

import numpy as np
import pytest

from repro.baselines.maron_ratan import ColorCorpus, single_blob_with_neighbors
from repro.baselines.rankers import GlobalCorrelationRanker, RandomRanker
from repro.database.store import ImageDatabase
from repro.errors import DatabaseError, EvaluationError, FeatureError


class TestSBN:
    def test_shapes(self):
        rgb = np.random.default_rng(0).uniform(size=(48, 48, 3))
        instances = single_blob_with_neighbors(rgb, grid=6)
        assert instances.shape == (16, 15)

    def test_grid_controls_instance_count(self):
        rgb = np.random.default_rng(1).uniform(size=(60, 60, 3))
        assert single_blob_with_neighbors(rgb, grid=5).shape == (9, 15)
        assert single_blob_with_neighbors(rgb, grid=8).shape == (36, 15)

    def test_uniform_image_gives_zero_differences(self):
        rgb = np.full((40, 40, 3), 0.5)
        instances = single_blob_with_neighbors(rgb)
        np.testing.assert_allclose(instances[:, :3], 0.5)
        np.testing.assert_allclose(instances[:, 3:], 0.0, atol=1e-12)

    def test_blob_color_is_mean(self):
        rgb = np.zeros((60, 60, 3))
        rgb[..., 0] = 1.0  # pure red everywhere
        instances = single_blob_with_neighbors(rgb, grid=6)
        np.testing.assert_allclose(instances[:, 0], 1.0)
        np.testing.assert_allclose(instances[:, 1], 0.0)

    def test_neighbor_differences_signed(self):
        # Top half dark, bottom half bright: the up-neighbour diff of a cell
        # on the boundary must be negative (up is darker).
        rgb = np.zeros((60, 60, 3))
        rgb[30:] = 1.0
        instances = single_blob_with_neighbors(rgb, grid=6)
        # Cell (3, j) has up-neighbour (2, j) in the dark half.
        row_of_interest = instances.reshape(4, 4, 15)[2]  # grid row 3
        assert np.all(row_of_interest[:, 3] <= 0.0 + 1e-9)

    def test_rejects_gray(self):
        with pytest.raises(FeatureError):
            single_blob_with_neighbors(np.zeros((40, 40)))

    def test_rejects_small_grid(self):
        with pytest.raises(FeatureError):
            single_blob_with_neighbors(np.zeros((40, 40, 3)), grid=2)

    def test_rejects_tiny_image(self):
        with pytest.raises(FeatureError):
            single_blob_with_neighbors(np.zeros((4, 4, 3)), grid=6)


class TestColorCorpus:
    def make_db(self) -> ImageDatabase:
        database = ImageDatabase()
        rng = np.random.default_rng(0)
        for index in range(3):
            database.add_image(
                rng.uniform(size=(48, 48, 3)), "colorful", f"c-{index}"
            )
        database.add_image(rng.uniform(0.1, 0.9, size=(48, 48)), "gray", "g-0")
        return database

    def test_instances_cached(self):
        corpus = ColorCorpus(self.make_db())
        first = corpus.instances_for("c-0")
        second = corpus.instances_for("c-0")
        assert first is second
        assert first.shape == (16, 15)

    def test_category_delegation(self):
        corpus = ColorCorpus(self.make_db())
        assert corpus.category_of("c-1") == "colorful"

    def test_gray_image_rejected(self):
        corpus = ColorCorpus(self.make_db())
        with pytest.raises(DatabaseError):
            corpus.instances_for("g-0")

    def test_retrieval_candidates(self):
        corpus = ColorCorpus(self.make_db())
        candidates = corpus.retrieval_candidates(["c-0", "c-2"])
        assert [c.image_id for c in candidates] == ["c-0", "c-2"]
        assert candidates[0].instances.shape == (16, 15)

    def test_packed_subset_on_mixed_database(self):
        # The gray image stays out of the subset, so packing must succeed
        # without touching it.
        corpus = ColorCorpus(self.make_db())
        packed = corpus.packed(["c-0", "c-1", "c-2"])
        assert packed.image_ids == ("c-0", "c-1", "c-2")
        assert packed.n_instances == 3 * 16
        assert packed.n_dims == 15

    def test_packed_full_database_rejects_gray(self):
        corpus = ColorCorpus(self.make_db())
        with pytest.raises(DatabaseError):
            corpus.packed()

    def test_packed_cached_on_color_only_database(self):
        color_only = ImageDatabase()
        rng = np.random.default_rng(1)
        for index in range(3):
            color_only.add_image(rng.uniform(size=(48, 48, 3)), "c", f"c-{index}")
        corpus = ColorCorpus(color_only)
        packed = corpus.packed()
        assert corpus.packed() is packed
        assert corpus.packed(["c-1"]).image_ids == ("c-1",)

    def test_packed_cache_invalidated_by_database_mutation(self):
        color_only = ImageDatabase()
        rng = np.random.default_rng(1)
        for index in range(3):
            color_only.add_image(rng.uniform(size=(48, 48, 3)), "c", f"c-{index}")
        corpus = ColorCorpus(color_only)
        before = corpus.packed()
        color_only.add_image(rng.uniform(size=(48, 48, 3)), "c", "c-new")
        after = corpus.packed()
        assert after is not before
        assert "c-new" in after.image_ids
        assert corpus.packed(["c-new"]).image_ids == ("c-new",)


class TestRandomRanker:
    def make_db(self) -> ImageDatabase:
        database = ImageDatabase()
        rng = np.random.default_rng(0)
        for index in range(6):
            database.add_image(rng.uniform(0.1, 0.9, (16, 16)), "x", f"i-{index}")
        return database

    def test_permutation(self):
        database = self.make_db()
        result = RandomRanker(seed=1).rank(database, database.image_ids)
        assert sorted(result.image_ids) == sorted(database.image_ids)

    def test_seeded_determinism(self):
        database = self.make_db()
        a = RandomRanker(seed=3).rank(database, database.image_ids)
        b = RandomRanker(seed=3).rank(database, database.image_ids)
        assert a.image_ids == b.image_ids

    def test_empty_rejected(self):
        with pytest.raises(EvaluationError):
            RandomRanker().rank(self.make_db(), [])


class TestGlobalCorrelationRanker:
    def make_db(self) -> ImageDatabase:
        database = ImageDatabase()
        rng = np.random.default_rng(7)
        base = rng.uniform(0.2, 0.8, size=(32, 32))
        # Three near-copies of the template and three unrelated images.
        for index in range(3):
            noisy = np.clip(base + rng.normal(0, 0.02, base.shape), 0, 1)
            database.add_image(noisy, "like", f"like-{index}")
        for index in range(3):
            database.add_image(
                rng.uniform(0.2, 0.8, size=(32, 32)), "unlike", f"unlike-{index}"
            )
        return database

    def test_similar_images_rank_first(self):
        database = self.make_db()
        ranker = GlobalCorrelationRanker(resolution=8)
        result = ranker.rank(
            database, ["like-0"], [i for i in database.image_ids if i != "like-0"]
        )
        assert result.ranked[0].category == "like"
        assert result.ranked[1].category == "like"

    def test_requires_positives(self):
        database = self.make_db()
        with pytest.raises(EvaluationError):
            GlobalCorrelationRanker().rank(database, [], ["like-0"])

    def test_requires_candidates(self):
        database = self.make_db()
        with pytest.raises(EvaluationError):
            GlobalCorrelationRanker().rank(database, ["like-0"], [])

    def test_invalid_resolution(self):
        with pytest.raises(EvaluationError):
            GlobalCorrelationRanker(resolution=1)
