"""Property-based tests of retrieval-engine invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.concept import LearnedConcept
from repro.core.retrieval import RetrievalCandidate, RetrievalEngine


@st.composite
def retrieval_case(draw):
    n_images = draw(st.integers(min_value=1, max_value=12))
    n_dims = draw(st.integers(min_value=1, max_value=6))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    candidates = [
        RetrievalCandidate(
            image_id=f"img-{index:03d}",
            category=rng.choice(["a", "b"]),
            instances=rng.normal(size=(int(rng.integers(1, 5)), n_dims)),
        )
        for index in range(n_images)
    ]
    concept = LearnedConcept(
        t=rng.normal(size=n_dims), w=rng.uniform(0.01, 2.0, size=n_dims), nll=0.0
    )
    return concept, candidates


@given(retrieval_case())
@settings(max_examples=150, deadline=None)
def test_ranking_is_permutation_of_input(case):
    concept, candidates = case
    result = RetrievalEngine().rank(concept, candidates)
    assert sorted(result.image_ids) == sorted(c.image_id for c in candidates)


@given(retrieval_case())
@settings(max_examples=150, deadline=None)
def test_distances_sorted(case):
    concept, candidates = case
    result = RetrievalEngine().rank(concept, candidates)
    distances = result.distances
    assert np.all(np.diff(distances) >= -1e-12)


@given(retrieval_case(), st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=100, deadline=None)
def test_input_order_invariance(case, shuffle_seed):
    concept, candidates = case
    shuffled = list(candidates)
    np.random.default_rng(shuffle_seed).shuffle(shuffled)
    original = RetrievalEngine().rank(concept, candidates)
    reordered = RetrievalEngine().rank(concept, shuffled)
    assert original.image_ids == reordered.image_ids


@given(retrieval_case())
@settings(max_examples=100, deadline=None)
def test_exclusion_removes_only_excluded(case):
    concept, candidates = case
    if len(candidates) < 2:
        return
    excluded = candidates[0].image_id
    result = RetrievalEngine().rank(concept, candidates, exclude=[excluded])
    assert excluded not in result.image_ids
    assert len(result) == len(candidates) - 1
    # Relative order of the remaining images is unchanged.
    full = RetrievalEngine().rank(concept, candidates)
    remaining = [i for i in full.image_ids if i != excluded]
    assert list(result.image_ids) == remaining


@given(retrieval_case(), st.floats(min_value=0.1, max_value=10.0))
@settings(max_examples=100, deadline=None)
def test_uniform_weight_scaling_preserves_order(case, factor):
    concept, candidates = case
    scaled = LearnedConcept(
        t=concept.t, w=concept.w * factor, nll=concept.nll
    )
    original = RetrievalEngine().rank(concept, candidates)
    rescaled = RetrievalEngine().rank(scaled, candidates)
    assert original.image_ids == rescaled.image_ids


@given(retrieval_case())
@settings(max_examples=100, deadline=None)
def test_batch_index_agrees_with_engine(case):
    """The StackedIndex fast path must agree with the reference engine."""
    from repro.core.retrieval import RetrievalResult

    concept, candidates = case
    reference = RetrievalEngine().rank(concept, candidates)

    # Emulate the index computation directly on the candidates.
    distances = np.array(
        [concept.bag_distance(c.instances) for c in candidates]
    )
    order = sorted(
        range(len(candidates)),
        key=lambda i: (distances[i], candidates[i].image_id),
    )
    assert tuple(candidates[i].image_id for i in order) == reference.image_ids
