"""Unit tests for the Section 4.1 experiment runner (small scale)."""

import pytest

from repro.errors import EvaluationError
from repro.eval.experiment import (
    ExperimentConfig,
    RetrievalExperiment,
    run_comparison,
)


def small_config(**overrides) -> ExperimentConfig:
    base = dict(
        target_category="waterfall",
        scheme="identical",
        n_positive=2,
        n_negative=2,
        rounds=2,
        false_positives_per_round=2,
        training_fraction=0.4,
        max_iterations=40,
        seed=6,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


class TestConfig:
    def test_with_overrides(self):
        config = small_config()
        changed = config.with_overrides(scheme="original", beta=0.25)
        assert changed.scheme == "original"
        assert changed.beta == pytest.approx(0.25)
        assert changed.target_category == config.target_category

    def test_unknown_category_rejected(self, tiny_scene_db):
        with pytest.raises(EvaluationError):
            RetrievalExperiment(tiny_scene_db, small_config(target_category="cars"))


class TestRun:
    def test_end_to_end(self, tiny_scene_db):
        result = RetrievalExperiment(tiny_scene_db, small_config()).run()
        assert result.relevance.size == result.recall_curve.n_retrieved
        assert 0.0 <= result.average_precision <= 1.0
        assert result.n_relevant > 0
        assert result.elapsed_seconds > 0
        assert len(result.outcome.rounds) == 2

    def test_relevance_counts_consistent(self, tiny_scene_db):
        result = RetrievalExperiment(tiny_scene_db, small_config()).run()
        # Hits in the ranking can be fewer than test-set relevants only if
        # examples swallowed some; they can never exceed.
        assert result.relevance.sum() <= result.n_relevant

    def test_shared_split_reused(self, tiny_scene_db):
        first = RetrievalExperiment(tiny_scene_db, small_config())
        second = RetrievalExperiment(
            tiny_scene_db, small_config(scheme="original"), split=first.split
        )
        assert second.split == first.split

    def test_deterministic(self, tiny_scene_db):
        a = RetrievalExperiment(tiny_scene_db, small_config()).run()
        b = RetrievalExperiment(tiny_scene_db, small_config()).run()
        assert a.average_precision == pytest.approx(b.average_precision)
        assert list(a.relevance) == list(b.relevance)

    def test_trainer_reflects_config(self, tiny_scene_db):
        experiment = RetrievalExperiment(
            tiny_scene_db, small_config(start_bag_subset=1, start_instance_stride=2)
        )
        trainer = experiment.build_trainer()
        assert trainer.config.start_bag_subset == 1
        assert trainer.config.start_instance_stride == 2

    def test_emdd_learner_runs_protocol(self, tiny_scene_db):
        result = RetrievalExperiment(
            tiny_scene_db, small_config(learner="emdd", max_iterations=25)
        ).run()
        assert "emdd" in result.outcome.final_training.concept.scheme

    def test_maron_ratan_learner_uses_color_corpus(self, tiny_scene_db):
        result = RetrievalExperiment(
            tiny_scene_db, small_config(learner="maron-ratan", max_iterations=25)
        ).run()
        # SBN colour bags are 15-dimensional; region bags would be 36 here.
        assert result.outcome.final_training.concept.n_dims == 15

    def test_non_concept_learner_rejected(self, tiny_scene_db):
        experiment = RetrievalExperiment(tiny_scene_db, small_config(learner="random"))
        with pytest.raises(EvaluationError, match="does not learn a concept"):
            experiment.build_trainer()


class TestComparison:
    def test_runs_all_labels(self, tiny_scene_db):
        rows = run_comparison(
            tiny_scene_db,
            {
                "identical": small_config(),
                "original": small_config(scheme="original"),
            },
        )
        assert [row.label for row in rows] == ["identical", "original"]
        for row in rows:
            assert 0.0 <= row.average_precision <= 1.0

    def test_shared_split_alignment(self, tiny_scene_db):
        rows = run_comparison(
            tiny_scene_db,
            {
                "a": small_config(),
                "b": small_config(scheme="original"),
            },
            share_split=True,
        )
        ids_a = set(rows[0].result.outcome.test_ranking.image_ids)
        ids_b = set(rows[1].result.outcome.test_ranking.image_ids)
        # Same split; rankings may exclude different example promotions but
        # operate on the same test pool.
        assert ids_a <= ids_b | set(rows[1].result.outcome.example_ids)

    def test_empty_configs_rejected(self, tiny_scene_db):
        with pytest.raises(EvaluationError):
            run_comparison(tiny_scene_db, {})
