"""Unit suite for the hash-coded coarse tier (:mod:`repro.index.ann`).

Covers the bit-level contracts (vectorised pack/Hamming kernels proved
identical to their loop references), the banded candidate lookup, the
pack-time centroid reordering, the approximate rank path's routing and
instrumentation, and the persistence/shared-memory integration (database
format v4, serve snapshots, ``SharedPackedCorpus``).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.concept import LearnedConcept
from repro.core.retrieval import PackedCorpus, RANK_MODES, Ranker
from repro.errors import DatabaseError, QueryError
from repro.index.ann import (
    ApproxRanker,
    BagCoder,
    CoarseIndex,
    adopt_ann_payload,
    ann_payload,
    bag_summaries,
    centroid_order,
    corpus_fingerprint,
    default_candidates,
    hamming_by_loop,
    hamming_distances,
    pack_bits,
    pack_bits_by_loop,
    recall_at_k,
    unpack_bits,
)


def clustered_packed(n_bags=240, n_dims=6, seed=7, shuffle_seed=None):
    """A packed corpus of gaussian clusters (summaries are informative)."""
    rng = np.random.default_rng(seed)
    centers = rng.uniform(-1.0, 1.0, size=(8, n_dims))
    ids, cats, mats = [], [], []
    for i in range(n_bags):
        center = centers[i % len(centers)]
        ids.append(f"img{i:05d}")
        cats.append(f"cat{i % len(centers)}")
        mats.append(center + rng.normal(0.0, 0.05, size=(4, n_dims)))
    if shuffle_seed is not None:
        order = np.random.default_rng(shuffle_seed).permutation(n_bags)
        ids = [ids[j] for j in order]
        cats = [cats[j] for j in order]
        mats = [mats[j] for j in order]
    return PackedCorpus.pack(ids, cats, mats)


def concept_at(point, n_dims):
    t = np.full(n_dims, float(point)) if np.isscalar(point) else np.asarray(point, float)
    return LearnedConcept(t=t, w=np.ones(n_dims), nll=0.0)


class TestBitKernels:
    def test_pack_matches_loop_reference(self, rng):
        bits = rng.random((17, 130)) < 0.5
        fast = pack_bits(bits, 3)
        np.testing.assert_array_equal(fast, pack_bits_by_loop(bits, 3))

    def test_unpack_inverts_pack(self, rng):
        bits = rng.random((9, 77)) < 0.5
        np.testing.assert_array_equal(unpack_bits(pack_bits(bits, 2), 77), bits)

    def test_hamming_matches_loop_reference(self, rng):
        codes = rng.integers(0, 2**63, size=(25, 2), dtype=np.uint64)
        query = rng.integers(0, 2**63, size=2, dtype=np.uint64)
        fast = hamming_distances(codes, query)
        np.testing.assert_array_equal(fast, hamming_by_loop(codes, query))

    def test_hamming_of_identical_codes_is_zero(self):
        codes = np.array([[7, 9]], dtype=np.uint64)
        assert hamming_distances(codes, codes[0]).tolist() == [0]


class TestBagCoder:
    def test_codes_are_deterministic_for_a_corpus(self):
        packed = clustered_packed()
        a = BagCoder.fit(packed).encode_corpus(packed)
        b = BagCoder.fit(packed).encode_corpus(packed)
        np.testing.assert_array_equal(a, b)

    def test_seed_defaults_to_the_corpus_fingerprint(self):
        packed = clustered_packed()
        explicit = BagCoder.fit(packed, seed=corpus_fingerprint(packed))
        np.testing.assert_array_equal(
            explicit.planes, BagCoder.fit(packed).planes
        )

    def test_different_corpora_fingerprint_apart(self):
        assert corpus_fingerprint(clustered_packed(seed=7)) != corpus_fingerprint(
            clustered_packed(seed=8)
        )

    def test_summaries_reuse_index_envelopes(self):
        packed = clustered_packed()
        index = packed.shard_index()
        np.testing.assert_array_equal(
            bag_summaries(packed, index=index), bag_summaries(packed)
        )

    def test_nearby_bags_code_closer_than_far_bags(self):
        packed = clustered_packed()
        coder = BagCoder.fit(packed, n_bits=256)
        codes = coder.encode_corpus(packed)
        query = coder.encode_concept(
            concept_at(bag_summaries(packed)[0, -packed.n_dims:], packed.n_dims)
        )
        distances = hamming_distances(codes, query)
        same_cluster = np.arange(packed.n_bags) % 8 == 0
        assert distances[same_cluster].mean() < distances[~same_cluster].mean()

    def test_rejects_mismatched_concept_dims(self):
        coder = BagCoder.fit(clustered_packed(n_dims=6))
        with pytest.raises(DatabaseError):
            coder.encode_concept(concept_at(0.0, 5))


class TestCoarseIndex:
    def test_probe_returns_sorted_unique_positions_within_budget(self):
        packed = clustered_packed()
        coarse = CoarseIndex.build(packed)
        positions = coarse.probe_candidates(
            concept_at(0.0, packed.n_dims), n_candidates=50
        )
        assert positions.shape == (50,)
        assert np.all(np.diff(positions) > 0)
        assert positions.min() >= 0 and positions.max() < packed.n_bags

    def test_probe_respects_keep_mask(self):
        packed = clustered_packed()
        coarse = CoarseIndex.build(packed)
        keep = np.zeros(packed.n_bags, dtype=bool)
        keep[10:40] = True
        positions = coarse.probe_candidates(
            concept_at(0.0, packed.n_dims), n_candidates=20, keep=keep
        )
        assert np.all(keep[positions])

    def test_default_budget_has_a_floor(self):
        assert default_candidates(10) == 64
        assert default_candidates(100_000) == 15_000

    def test_stats_count_probes_and_fallbacks(self):
        packed = clustered_packed()
        coarse = CoarseIndex.build(packed)
        coarse.probe_candidates(concept_at(0.0, packed.n_dims), n_candidates=30)
        coarse.record_fallback()
        stats = coarse.stats()
        assert stats["probes"] == 1 and stats["fallbacks"] == 1
        assert stats["mean_candidates"] == 30.0
        assert stats["last"]["n_candidates"] == 30

    def test_payload_round_trips_through_arrays(self):
        packed = clustered_packed()
        coarse = CoarseIndex.build(packed, n_bits=64, n_tables=2, band_bits=8)
        arrays: dict = {}
        info = ann_payload(coarse, "x", arrays)
        restored_corpus = clustered_packed()
        adopt_ann_payload(restored_corpus, info, arrays)
        restored = restored_corpus.cached_coarse_index
        np.testing.assert_array_equal(restored.codes, coarse.codes)
        assert restored.n_tables == 2 and restored.band_bits == 8

    def test_adopt_none_payload_is_a_noop(self):
        packed = clustered_packed()
        adopt_ann_payload(packed, None, {})
        assert packed.cached_coarse_index is None

    def test_adopt_rejects_wrong_shape_codes(self):
        packed = clustered_packed()
        coarse = CoarseIndex.build(packed)
        arrays: dict = {}
        info = ann_payload(coarse, "x", arrays)
        with pytest.raises(DatabaseError):
            adopt_ann_payload(clustered_packed(n_bags=10), info, arrays)


class TestCentroidReordering:
    def test_permutation_is_id_stable_across_ingestion_orders(self):
        a = clustered_packed()
        b = clustered_packed(shuffle_seed=3)
        ids_a = [a.image_ids[i] for i in centroid_order(a)]
        ids_b = [b.image_ids[i] for i in centroid_order(b)]
        assert ids_a == ids_b

    def test_reordered_view_keeps_every_bag(self):
        packed = clustered_packed()
        reordered, permutation = packed.reordered_by_centroid()
        assert sorted(reordered.image_ids) == sorted(packed.image_ids)
        assert sorted(permutation.tolist()) == list(range(packed.n_bags))
        np.testing.assert_array_equal(
            reordered.bag_instances(packed.image_ids[5]),
            packed.bag_instances(packed.image_ids[5]),
        )

    def test_reordered_ranking_is_ordering_identical(self):
        packed = clustered_packed()
        reordered, _ = packed.reordered_by_centroid()
        concept = concept_at(0.25, packed.n_dims)
        for top_k in (None, 7):
            before = Ranker().rank(concept, packed, top_k=top_k)
            after = Ranker().rank(concept, reordered, top_k=top_k)
            assert before.image_ids == after.image_ids
            np.testing.assert_array_equal(before.distances, after.distances)


class TestApproxRanking:
    def test_results_are_a_subset_with_exact_distances(self):
        packed = clustered_packed()
        concept = concept_at(0.25, packed.n_dims)
        exact = Ranker().rank(concept, packed, top_k=None)
        exact_by_id = dict(zip(exact.image_ids, exact.distances))
        approx = ApproxRanker(n_candidates=60).rank(concept, packed, top_k=10)
        assert len(approx) == 10
        for entry in approx:
            assert entry.distance == exact_by_id[entry.image_id]

    def test_ranker_routes_approx_mode(self):
        packed = clustered_packed()
        packed.configure_rank_index(rank_mode="approx")
        concept = concept_at(0.25, packed.n_dims)
        routed = Ranker().rank(concept, packed, top_k=10)
        direct = ApproxRanker().rank(concept, packed, top_k=10)
        assert routed.image_ids == direct.image_ids
        assert packed.cached_coarse_index.stats()["probes"] >= 1

    def test_explicit_exact_mode_overrides_corpus_policy(self):
        packed = clustered_packed()
        packed.configure_rank_index(rank_mode="approx")
        concept = concept_at(0.25, packed.n_dims)
        exact = Ranker(rank_mode="exact").rank(concept, packed, top_k=10)
        pristine = clustered_packed()  # same bags, no approx policy
        reference = Ranker().rank(concept, pristine, top_k=10)
        assert exact.image_ids == reference.image_ids

    def test_full_ranking_falls_back_to_exact(self):
        packed = clustered_packed()
        concept = concept_at(0.25, packed.n_dims)
        full = ApproxRanker().rank(concept, packed, top_k=None)
        reference = Ranker(rank_mode="exact").rank(concept, packed, top_k=None)
        assert full.image_ids == reference.image_ids
        assert packed.cached_coarse_index.stats()["fallbacks"] >= 1

    def test_exclude_and_category_filter_are_respected(self):
        packed = clustered_packed()
        concept = concept_at(0.25, packed.n_dims)
        excluded = packed.image_ids[0]
        result = ApproxRanker(n_candidates=80).rank(
            concept, packed, top_k=20, exclude=(excluded,),
            category_filter="cat0",
        )
        assert excluded not in result.image_ids
        assert all(entry.category == "cat0" for entry in result)

    def test_recall_is_high_on_clustered_data(self):
        packed = clustered_packed(n_bags=400)
        center = bag_summaries(packed)[0, -packed.n_dims:]
        concept = concept_at(center, packed.n_dims)
        exact = Ranker(rank_mode="exact").rank(concept, packed, top_k=10)
        approx = ApproxRanker(n_candidates=100).rank(concept, packed, top_k=10)
        assert recall_at_k(exact, approx, 10) >= 0.9

    def test_recall_at_k_bounds(self):
        packed = clustered_packed(n_bags=40)
        concept = concept_at(0.25, packed.n_dims)
        exact = Ranker().rank(concept, packed, top_k=5)
        assert recall_at_k(exact, exact, 5) == 1.0
        with pytest.raises(DatabaseError):
            recall_at_k(exact, exact, 0)

    def test_rank_modes_constant_and_validation(self):
        assert RANK_MODES == ("exact", "approx")
        packed = clustered_packed(n_bags=10)
        with pytest.raises(DatabaseError):
            packed.configure_rank_index(rank_mode="fuzzy")
        with pytest.raises(DatabaseError):
            Ranker(rank_mode="fuzzy")


class TestServiceIntegration:
    def test_service_rejects_unknown_mode(self):
        from repro.api.service import RetrievalService

        with pytest.raises(QueryError):
            RetrievalService(clustered_packed(n_bags=10), rank_mode="fuzzy")

    def test_stats_carry_the_ann_block(self):
        from repro.api.service import RetrievalService

        packed = clustered_packed()
        service = RetrievalService(packed, rank_mode="approx")
        stats = service.stats()
        assert stats["rank_index"]["mode"] == "approx"
        assert stats["ann"] is None  # no probe yet, no coarse build forced
        packed.coarse_index()
        coarse_stats = service.stats()["ann"]
        assert coarse_stats["n_bags"] == packed.n_bags

    def test_rank_policy_stamps_the_mode_both_ways(self):
        from repro.api.service import RetrievalService

        packed = clustered_packed(n_bags=10)
        approx_service = RetrievalService(packed, rank_mode="approx")
        approx_service.apply_rank_policy(packed)
        assert packed.rank_mode == "approx"
        exact_service = RetrievalService(packed)
        exact_service.apply_rank_policy(packed)
        assert packed.rank_mode == "exact"


class TestWireRankMode:
    def test_rank_endpoint_accepts_a_mode_override(self, tiny_scene_db):
        from repro.api.service import RetrievalService
        from repro.serve import codec
        from repro.serve.app import ServiceApp

        service = RetrievalService(tiny_scene_db)
        app = ServiceApp(service)
        packed = tiny_scene_db.packed()
        concept = concept_at(
            packed.instances[0], packed.n_dims
        )
        payload = codec.envelope(
            "rank",
            {
                "concept": codec.encode_concept(concept),
                "top_k": 5,
                "rank_mode": "exact",
            },
        )
        body = codec.open_envelope(app.rank(payload), "rank_result")
        ranking = codec.decode_ranking(body["ranking"])
        assert len(ranking) == 5

    def test_rank_endpoint_rejects_unknown_mode(self, tiny_scene_db):
        from repro.api.service import RetrievalService
        from repro.errors import CodecError
        from repro.serve import codec
        from repro.serve.app import ServiceApp

        service = RetrievalService(tiny_scene_db)
        app = ServiceApp(service)
        payload = codec.envelope("rank", {"session": "x", "rank_mode": "fuzzy"})
        with pytest.raises(CodecError):
            app.rank(payload)


class TestSharedMemoryAdoption:
    def test_segment_carries_the_coarse_tier(self):
        from repro.serve.shm import SharedPackedCorpus

        packed = clustered_packed()
        packed.coarse_index()
        packed.configure_rank_index(rank_mode="approx")
        shared = SharedPackedCorpus.create(packed)
        try:
            attached = SharedPackedCorpus.attach(shared.spec)
            corpus = attached.corpus()
            assert corpus.rank_mode == "approx"
            coarse = corpus.cached_coarse_index
            assert coarse is not None
            np.testing.assert_array_equal(
                coarse.codes, packed.cached_coarse_index.codes
            )
            # The codes are views into the segment, not private copies.
            assert not coarse.codes.flags["OWNDATA"]
            attached.close()
        finally:
            shared.unlink()

    def test_pre_ann_spec_still_attaches(self):
        from repro.serve.shm import SharedPackedCorpus

        packed = clustered_packed()
        packed.coarse_index()
        shared = SharedPackedCorpus.create(packed)
        try:
            spec = {
                key: value
                for key, value in shared.spec.items()
                if key not in ("ann", "rank_mode")
            }
            spec["arrays"] = {
                key: value
                for key, value in shared.spec["arrays"].items()
                if not key.startswith("ann_")
            }
            attached = SharedPackedCorpus.attach(spec)
            corpus = attached.corpus()
            assert corpus.cached_coarse_index is None
            assert corpus.rank_mode == "exact"
            attached.close()
        finally:
            shared.unlink()


class TestPersistenceV4:
    def test_reordered_corpus_and_coarse_tier_round_trip(
        self, tiny_scene_db, tmp_path
    ):
        from repro.database.persistence import load_database, save_database

        packed = tiny_scene_db.packed()
        reordered, _ = packed.reordered_by_centroid()
        tiny_scene_db.adopt_packed(reordered)
        reordered.coarse_index()
        try:
            path = save_database(tiny_scene_db, tmp_path / "snap.npz")
            restored = load_database(path)
            packed_back = restored.cached_packed
            assert packed_back.image_ids == reordered.image_ids
            coarse = packed_back.cached_coarse_index
            assert coarse is not None
            np.testing.assert_array_equal(
                coarse.codes, reordered.cached_coarse_index.codes
            )
        finally:
            # The session-scoped db must not leak the reordered view into
            # other tests.
            tiny_scene_db.adopt_packed(packed)

    def test_v3_snapshot_still_loads(self, tiny_scene_db, tmp_path):
        from repro.database.persistence import (
            SUPPORTED_VERSIONS,
            load_database,
            save_database,
        )

        assert SUPPORTED_VERSIONS == (1, 2, 3, 4)
        tiny_scene_db.packed()
        path = save_database(tiny_scene_db, tmp_path / "snap.npz")
        with np.load(path) as archive:
            manifest = json.loads(bytes(archive["manifest"]).decode("utf-8"))
            arrays = {
                key: archive[key] for key in archive.files if key != "manifest"
            }
        manifest["version"] = 3
        manifest["packed"].pop("order", None)
        manifest["packed"].pop("ann", None)
        arrays["manifest"] = np.frombuffer(
            json.dumps(manifest).encode("utf-8"), dtype=np.uint8
        )
        v3_path = tmp_path / "v3.npz"
        np.savez_compressed(v3_path, **arrays)
        restored = load_database(v3_path)
        assert restored.cached_packed is not None
        assert restored.cached_packed.cached_coarse_index is None

    def test_corrupt_bag_order_is_rejected(self, tiny_scene_db, tmp_path):
        from repro.database.persistence import load_database, save_database

        packed = tiny_scene_db.packed()
        reordered, _ = packed.reordered_by_centroid()
        tiny_scene_db.adopt_packed(reordered)
        try:
            path = save_database(tiny_scene_db, tmp_path / "snap.npz")
        finally:
            tiny_scene_db.adopt_packed(packed)
        with np.load(path) as archive:
            manifest = json.loads(bytes(archive["manifest"]).decode("utf-8"))
            arrays = {
                key: archive[key] for key in archive.files if key != "manifest"
            }
        order_key = manifest["packed"]["order"]
        arrays[order_key] = np.zeros_like(arrays[order_key])  # not a permutation
        bad_path = tmp_path / "bad.npz"
        np.savez_compressed(bad_path, **arrays)
        with pytest.raises(DatabaseError):
            load_database(bad_path)


class TestServeSnapshotRankMode:
    def test_saved_mode_restores_and_cli_overrides(self, tiny_scene_db, tmp_path):
        from repro.api.service import RetrievalService
        from repro.serve.snapshot import load_service, save_service

        tiny_scene_db.packed()
        service = RetrievalService(tiny_scene_db, rank_mode="approx")
        path = tmp_path / "svc.npz"
        save_service(service, path)
        restored, _ = load_service(path)
        assert restored.rank_mode == "approx"
        overridden, _ = load_service(path, rank_mode="exact")
        assert overridden.rank_mode == "exact"


class TestPoolCacheBound:
    def test_shared_pool_cache_is_lru_bounded(self):
        from repro.core import sharding

        with sharding._POOL_LOCK:
            before = dict(sharding._SHARED_POOLS)
            sharding._SHARED_POOLS.clear()
        try:
            for workers in range(2, 2 + sharding.MAX_POOL_CACHE + 3):
                sharding._shared_pool(workers)
            with sharding._POOL_LOCK:
                assert len(sharding._SHARED_POOLS) == sharding.MAX_POOL_CACHE
                # Oldest entries were evicted, newest kept.
                assert 2 not in sharding._SHARED_POOLS
                assert (1 + sharding.MAX_POOL_CACHE + 3) in sharding._SHARED_POOLS
        finally:
            sharding._shutdown_shared_pools()
            with sharding._POOL_LOCK:
                sharding._SHARED_POOLS.update(before)
