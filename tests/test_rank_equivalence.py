"""Equivalence suite: the vectorized Ranker vs the legacy per-bag loop.

The redesign's core claim is that :class:`~repro.core.retrieval.Ranker`
(broadcast weighted distances + ``np.minimum.reduceat`` + id-tie-broken
lexsort over a :class:`~repro.core.retrieval.PackedCorpus`) produces
**bit-identical orderings** to :func:`~repro.core.retrieval.rank_by_loop`
(per-bag Python loop over candidates).  This suite asserts that across:

* a seeded region-bag corpus (the paper's feature pipeline),
* a seeded SBN colour corpus (the Maron-Ratan baseline family),
* synthetic corpora with exact distance ties,
* exclusion, category filtering and ``top_k`` truncation.
"""

import numpy as np
import pytest

from repro.baselines.maron_ratan import ColorCorpus
from repro.core.concept import LearnedConcept
from repro.core.retrieval import (
    PackedCorpus,
    Ranker,
    RetrievalCandidate,
    rank_by_loop,
)


def seeded_concepts(n_dims: int, n_concepts: int = 3, seed: int = 99):
    rng = np.random.default_rng(seed)
    return [
        LearnedConcept(
            t=rng.normal(size=n_dims),
            w=rng.uniform(0.05, 1.0, size=n_dims),
            nll=0.0,
        )
        for _ in range(n_concepts)
    ]


def assert_equivalent(vectorized, reference):
    # The ordering contract is bit-identical; distances may differ by ~1 ulp
    # because BLAS accumulates a full-matrix product differently from the
    # per-bag products the loop issues.
    assert vectorized.image_ids == reference.image_ids
    np.testing.assert_allclose(
        vectorized.distances, reference.distances, rtol=1e-12, atol=0.0
    )
    assert [e.category for e in vectorized] == [e.category for e in reference]
    assert [e.rank for e in vectorized] == [e.rank for e in reference]


class TestRegionBagEquivalence:
    """Seeded region-bag corpus: packed kernel == per-bag loop."""

    def test_full_ranking(self, tiny_scene_db):
        packed = tiny_scene_db.packed()
        candidates = list(packed.candidates())
        for concept in seeded_concepts(packed.n_dims):
            assert_equivalent(
                Ranker().rank(concept, packed),
                rank_by_loop(concept, candidates),
            )

    def test_with_exclusions(self, tiny_scene_db):
        packed = tiny_scene_db.packed()
        candidates = list(packed.candidates())
        excluded = packed.image_ids[::3]
        for concept in seeded_concepts(packed.n_dims):
            assert_equivalent(
                Ranker().rank(concept, packed, exclude=excluded),
                rank_by_loop(concept, candidates, exclude=excluded),
            )

    def test_subset_corpus(self, tiny_scene_db):
        subset = tiny_scene_db.image_ids[1::2]
        packed = tiny_scene_db.packed(subset)
        candidates = tiny_scene_db.retrieval_candidates(subset)
        for concept in seeded_concepts(packed.n_dims):
            assert_equivalent(
                Ranker().rank(concept, packed),
                rank_by_loop(concept, candidates),
            )

    def test_category_filter_matches_manual_filtering(self, tiny_scene_db):
        packed = tiny_scene_db.packed()
        target = tiny_scene_db.categories()[0]
        only_target = [
            c for c in packed.candidates() if c.category == target
        ]
        for concept in seeded_concepts(packed.n_dims):
            assert_equivalent(
                Ranker().rank(concept, packed, category_filter=target),
                rank_by_loop(concept, only_target),
            )

    def test_top_k_is_a_prefix_of_the_full_ranking(self, tiny_scene_db):
        packed = tiny_scene_db.packed()
        concept = seeded_concepts(packed.n_dims, n_concepts=1)[0]
        full = Ranker().rank(concept, packed)
        truncated = Ranker().rank(concept, packed, top_k=7)
        assert truncated.image_ids == full.image_ids[:7]
        assert truncated.total_candidates == len(full)
        assert truncated.is_truncated


class TestColorCorpusEquivalence:
    """Seeded SBN colour corpus: the baseline family shares the fast path."""

    @pytest.fixture(scope="class")
    def color_corpus(self, tiny_scene_db):
        return ColorCorpus(tiny_scene_db, grid=4)

    def test_full_ranking(self, color_corpus, tiny_scene_db):
        packed = color_corpus.packed()
        assert packed.n_bags == len(tiny_scene_db)
        candidates = list(packed.candidates())
        for concept in seeded_concepts(packed.n_dims):
            assert_equivalent(
                Ranker().rank(concept, packed),
                rank_by_loop(concept, candidates),
            )

    def test_with_exclusions(self, color_corpus):
        packed = color_corpus.packed()
        excluded = packed.image_ids[:5]
        for concept in seeded_concepts(packed.n_dims):
            assert_equivalent(
                Ranker().rank(concept, packed, exclude=excluded),
                rank_by_loop(concept, packed.candidates(), exclude=excluded),
            )


class TestTieBreaking:
    """Exact distance ties must break by image id in both implementations."""

    def make_tied_candidates(self):
        rng = np.random.default_rng(7)
        shared = rng.normal(size=(3, 4))
        # Interleave ids so insertion order disagrees with id order, and give
        # several bags the *same* instance matrix (exact distance ties).
        names = ["m-2", "a-9", "z-1", "a-1", "m-1", "z-0"]
        return [
            RetrievalCandidate(
                image_id=name,
                category="tied" if index % 2 == 0 else "other",
                instances=shared.copy(),
            )
            for index, name in enumerate(names)
        ] + [
            RetrievalCandidate(
                image_id="far-0", category="other",
                instances=shared + 50.0,
            )
        ]

    def test_ties_broken_identically(self):
        candidates = self.make_tied_candidates()
        packed = PackedCorpus.from_candidates(candidates)
        for concept in seeded_concepts(4):
            vectorized = Ranker().rank(concept, packed)
            reference = rank_by_loop(concept, candidates)
            assert_equivalent(vectorized, reference)
            # All tied bags sort by id, ahead of the far bag.
            assert vectorized.image_ids == (
                "a-1", "a-9", "m-1", "m-2", "z-0", "z-1", "far-0"
            )

    def test_ties_with_exclusion_and_top_k(self):
        candidates = self.make_tied_candidates()
        packed = PackedCorpus.from_candidates(candidates)
        concept = seeded_concepts(4, n_concepts=1)[0]
        vectorized = Ranker().rank(concept, packed, exclude=["a-1"], top_k=3)
        reference = rank_by_loop(concept, candidates, exclude=["a-1"])
        assert vectorized.image_ids == reference.image_ids[:3]
        assert vectorized.total_candidates == len(reference)


class TestEngineDelegation:
    """The compatibility RetrievalEngine must equal the reference loop too."""

    def test_engine_matches_loop(self, tiny_scene_db):
        from repro.core.retrieval import RetrievalEngine

        candidates = tiny_scene_db.retrieval_candidates()
        concept = seeded_concepts(tiny_scene_db.feature_config.n_dims, 1)[0]
        assert_equivalent(
            RetrievalEngine().rank(concept, candidates),
            rank_by_loop(concept, candidates),
        )
