"""Unit tests for the batch retrieval index."""

import numpy as np
import pytest

from repro.core.concept import LearnedConcept
from repro.core.retrieval import RetrievalEngine
from repro.database.index import StackedIndex
from repro.errors import DatabaseError
from repro.imaging.features import FeatureConfig
from repro.imaging.regions import region_family


@pytest.fixture(scope="module")
def indexed(tiny_scene_db_module):
    database = tiny_scene_db_module
    return database, StackedIndex(database)


@pytest.fixture(scope="module")
def tiny_scene_db_module():
    from repro.datasets.loader import quick_database

    config = FeatureConfig(resolution=6, region_family=region_family("small9"))
    database = quick_database(
        "scenes", images_per_category=5, size=(48, 48), seed=4, feature_config=config
    )
    database.precompute_features()
    return database


def concept_for(database) -> LearnedConcept:
    n_dims = database.feature_config.n_dims
    rng = np.random.default_rng(0)
    return LearnedConcept(t=rng.normal(size=n_dims), w=rng.uniform(0.2, 1, n_dims), nll=0.0)


class TestStackedIndex:
    def test_shapes(self, indexed):
        database, index = indexed
        assert index.n_images == len(database)
        assert index.n_dims == database.feature_config.n_dims
        assert index.n_instances >= index.n_images

    def test_distances_match_per_bag(self, indexed):
        database, index = indexed
        concept = concept_for(database)
        batch = index.distances(concept)
        for position, image_id in enumerate(index.image_ids):
            expected = concept.bag_distance(database.instances_for(image_id))
            assert batch[position] == pytest.approx(expected, rel=1e-9)

    def test_ranking_identical_to_engine(self, indexed):
        database, index = indexed
        concept = concept_for(database)
        batch = index.rank(concept)
        reference = RetrievalEngine().rank(concept, database.retrieval_candidates())
        assert batch.image_ids == reference.image_ids
        np.testing.assert_allclose(batch.distances, reference.distances, rtol=1e-9)

    def test_exclusion(self, indexed):
        database, index = indexed
        concept = concept_for(database)
        skipped = index.image_ids[0]
        result = index.rank(concept, exclude=[skipped])
        assert skipped not in result.image_ids
        assert len(result) == index.n_images - 1

    def test_subset_index(self, indexed):
        database, _ = indexed
        subset = database.ids_in_category("sunset")
        index = StackedIndex(database, ids=subset)
        assert index.n_images == len(subset)
        concept = concept_for(database)
        result = index.rank(concept)
        assert set(result.image_ids) == set(subset)

    def test_empty_ids_rejected(self, indexed):
        database, _ = indexed
        with pytest.raises(DatabaseError):
            StackedIndex(database, ids=[])

    def test_stale_index_dimension_mismatch(self, indexed):
        database, index = indexed
        wrong = LearnedConcept(t=np.zeros(4), w=np.ones(4), nll=0.0)
        with pytest.raises(DatabaseError):
            index.distances(wrong)

    def test_repr(self, indexed):
        _, index = indexed
        assert "images" in repr(index)

    def test_index_satisfies_the_corpus_protocol(self, indexed):
        # packed() is a method, so the index itself can be ranked.
        from repro.core.retrieval import Ranker

        database, index = indexed
        concept = concept_for(database)
        via_index = Ranker().rank(concept, index)
        direct = Ranker().rank(concept, database.packed())
        assert via_index.image_ids == direct.image_ids

    def test_full_index_shares_the_database_cache(self, indexed):
        database, _ = indexed
        index = StackedIndex(database)
        assert index.packed() is database.packed()
