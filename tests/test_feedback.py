"""Unit tests for the simulated relevance-feedback loop."""

import numpy as np
import pytest

from repro.core.diverse_density import DiverseDensityTrainer, TrainerConfig
from repro.core.feedback import (
    ExampleSelection,
    FeedbackLoop,
    select_examples,
)
from repro.core.retrieval import RetrievalCandidate
from repro.errors import TrainingError


class ToyCorpus:
    """A corpus of 1-instance bags on a line; category 'pos' sits near 0."""

    def __init__(self, n_per_category: int = 8, seed: int = 0):
        rng = np.random.default_rng(seed)
        self._items: dict[str, tuple[str, np.ndarray]] = {}
        for index in range(n_per_category):
            vec = np.array([rng.normal(0.0, 0.3), rng.normal(0.0, 0.3)])
            self._items[f"pos-{index}"] = ("pos", vec.reshape(1, 2))
        for index in range(n_per_category):
            vec = np.array([rng.normal(4.0, 0.3), rng.normal(4.0, 0.3)])
            self._items[f"neg-{index}"] = ("neg", vec.reshape(1, 2))
        # A decoy category living between the clusters.
        for index in range(n_per_category):
            vec = np.array([rng.normal(1.5, 0.3), rng.normal(1.5, 0.3)])
            self._items[f"decoy-{index}"] = ("decoy", vec.reshape(1, 2))

    @property
    def ids(self):
        return tuple(self._items)

    def instances_for(self, image_id: str) -> np.ndarray:
        return self._items[image_id][1]

    def category_of(self, image_id: str) -> str:
        return self._items[image_id][0]

    def retrieval_candidates(self, ids):
        return [
            RetrievalCandidate(
                image_id=i, category=self.category_of(i), instances=self.instances_for(i)
            )
            for i in ids
        ]


@pytest.fixture()
def corpus():
    return ToyCorpus()


class TestSelectExamples:
    def test_counts(self, corpus):
        selection = select_examples(corpus, corpus.ids, "pos", 3, 4, seed=1)
        assert len(selection.positive_ids) == 3
        assert len(selection.negative_ids) == 4

    def test_positive_ids_in_category(self, corpus):
        selection = select_examples(corpus, corpus.ids, "pos", 3, 3, seed=2)
        assert all(corpus.category_of(i) == "pos" for i in selection.positive_ids)
        assert all(corpus.category_of(i) != "pos" for i in selection.negative_ids)

    def test_deterministic(self, corpus):
        a = select_examples(corpus, corpus.ids, "pos", 3, 3, seed=5)
        b = select_examples(corpus, corpus.ids, "pos", 3, 3, seed=5)
        assert a == b

    def test_different_seeds_differ(self, corpus):
        picks = {
            select_examples(corpus, corpus.ids, "pos", 3, 3, seed=s).positive_ids
            for s in range(6)
        }
        assert len(picks) > 1

    def test_insufficient_positives_raise(self, corpus):
        with pytest.raises(TrainingError):
            select_examples(corpus, corpus.ids, "pos", 100, 3, seed=0)

    def test_insufficient_negatives_raise(self, corpus):
        with pytest.raises(TrainingError):
            select_examples(corpus, corpus.ids, "pos", 3, 100, seed=0)


class TestFeedbackLoop:
    def make_loop(self, corpus, rounds=3, fp=2) -> FeedbackLoop:
        trainer = DiverseDensityTrainer(
            TrainerConfig(scheme="identical", max_iterations=60)
        )
        potential = [i for i in corpus.ids if int(i.split("-")[1]) < 4]
        test = [i for i in corpus.ids if int(i.split("-")[1]) >= 4]
        return FeedbackLoop(
            corpus=corpus,
            trainer=trainer,
            target_category="pos",
            potential_ids=potential,
            test_ids=test,
            rounds=rounds,
            false_positives_per_round=fp,
        )

    def selection(self, corpus) -> ExampleSelection:
        potential = [i for i in corpus.ids if int(i.split("-")[1]) < 4]
        return select_examples(corpus, potential, "pos", 2, 2, seed=0)

    def test_round_count(self, corpus):
        outcome = self.make_loop(corpus).run(self.selection(corpus))
        assert len(outcome.rounds) == 3
        assert [r.index for r in outcome.rounds] == [1, 2, 3]

    def test_negatives_grow_by_promotion(self, corpus):
        outcome = self.make_loop(corpus).run(self.selection(corpus))
        first, second, final = outcome.rounds
        assert second.n_negative_bags >= first.n_negative_bags
        assert final.added_negative_ids == ()  # no promotion after last round

    def test_promoted_ids_are_false_positives(self, corpus):
        outcome = self.make_loop(corpus).run(self.selection(corpus))
        for record in outcome.rounds[:-1]:
            for image_id in record.added_negative_ids:
                assert corpus.category_of(image_id) != "pos"

    def test_test_ranking_excludes_examples(self, corpus):
        outcome = self.make_loop(corpus).run(self.selection(corpus))
        ranked_ids = set(outcome.test_ranking.image_ids)
        assert not ranked_ids & set(outcome.example_ids)

    def test_retrieval_finds_target(self, corpus):
        outcome = self.make_loop(corpus).run(self.selection(corpus))
        top = outcome.test_ranking.top(3)
        assert all(entry.category == "pos" for entry in top)

    def test_single_round_no_promotion(self, corpus):
        outcome = self.make_loop(corpus, rounds=1).run(self.selection(corpus))
        assert len(outcome.rounds) == 1
        assert outcome.rounds[0].added_negative_ids == ()

    def test_zero_fp_per_round(self, corpus):
        outcome = self.make_loop(corpus, fp=0).run(self.selection(corpus))
        sizes = {r.n_negative_bags for r in outcome.rounds}
        assert sizes == {2}

    def test_invalid_rounds_rejected(self, corpus):
        with pytest.raises(TrainingError):
            self.make_loop(corpus, rounds=0)

    def test_invalid_fp_rejected(self, corpus):
        with pytest.raises(TrainingError):
            self.make_loop(corpus, fp=-1)

    def test_nll_recorded_per_round(self, corpus):
        outcome = self.make_loop(corpus).run(self.selection(corpus))
        assert all(np.isfinite(record.nll) for record in outcome.rounds)
