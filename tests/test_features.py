"""Unit tests for the image-to-feature pipeline (repro.imaging.features)."""

import numpy as np
import pytest

from repro.errors import FeatureError
from repro.imaging.features import (
    DEFAULT_VARIANCE_THRESHOLD,
    FeatureConfig,
    FeatureExtractor,
    FeatureSet,
    InstanceSource,
)
from repro.imaging.image import GrayImage
from repro.imaging.regions import region_family
from repro.imaging.smoothing import smooth_and_sample
from repro.imaging.transform import normalize_feature


def textured_image(seed: int = 0, size: int = 64) -> GrayImage:
    rng = np.random.default_rng(seed)
    plane = rng.uniform(0.2, 0.8, size=(size, size))
    return GrayImage(pixels=plane, image_id=f"tex-{seed}")


class TestFeatureConfig:
    def test_defaults(self):
        config = FeatureConfig()
        assert config.resolution == 10
        assert config.n_dims == 100
        assert config.max_instances == 40
        assert config.include_mirrors

    def test_no_mirrors_halves_max(self):
        config = FeatureConfig(include_mirrors=False)
        assert config.max_instances == 20

    def test_rejects_tiny_resolution(self):
        with pytest.raises(FeatureError):
            FeatureConfig(resolution=1)

    def test_rejects_negative_threshold(self):
        with pytest.raises(FeatureError):
            FeatureConfig(variance_threshold=-1.0)

    def test_small_family_config(self):
        config = FeatureConfig(resolution=6, region_family=region_family("small9"))
        assert config.n_dims == 36
        assert config.max_instances == 18


class TestFeatureExtractor:
    def test_extracts_full_bag_from_textured_image(self):
        extractor = FeatureExtractor(FeatureConfig(resolution=6))
        features = extractor.extract(textured_image())
        assert features.n_instances == 40
        assert features.n_dims == 36
        assert not features.dropped_regions

    def test_vectors_are_normalised(self):
        extractor = FeatureExtractor(FeatureConfig(resolution=6))
        features = extractor.extract(textured_image(1))
        means = features.vectors.mean(axis=1)
        norms = (features.vectors**2).sum(axis=1)
        np.testing.assert_allclose(means, 0.0, atol=1e-10)
        np.testing.assert_allclose(norms, 36.0, rtol=1e-9)

    def test_mirror_pairs_are_column_flips(self):
        extractor = FeatureExtractor(FeatureConfig(resolution=6))
        features = extractor.extract(textured_image(2))
        plain = features.vectors[0].reshape(6, 6)
        mirrored = features.vectors[1].reshape(6, 6)
        np.testing.assert_allclose(mirrored, plain[:, ::-1])
        assert not features.sources[0].mirrored
        assert features.sources[1].mirrored

    def test_mirror_equals_extracting_mirrored_image(self):
        # The flip optimisation must be exact (documented invariant).
        extractor = FeatureExtractor(FeatureConfig(resolution=6, variance_threshold=0.0))
        image = textured_image(3)
        direct = extractor.extract(image.mirrored())
        flipped = extractor.extract(image)
        # Region r of the mirrored image equals the mirror of the mirrored
        # counterpart region; for symmetric regions (full frame) compare
        # directly.
        full_direct = direct.vectors[0]
        full_flipped_mirror = flipped.vectors[1]
        np.testing.assert_allclose(full_direct, full_flipped_mirror, atol=1e-10)

    def test_first_vector_matches_manual_pipeline(self):
        config = FeatureConfig(resolution=6)
        extractor = FeatureExtractor(config)
        image = textured_image(4)
        features = extractor.extract(image)
        manual = normalize_feature(smooth_and_sample(image.pixels, 6).reshape(-1))
        np.testing.assert_allclose(features.vectors[0], manual, atol=1e-12)

    def test_variance_filter_drops_flat_regions(self):
        # Flat image with texture only in the NW quadrant: most regions drop.
        plane = np.full((64, 64), 0.5)
        plane[:32, :32] = np.random.default_rng(5).uniform(0.2, 0.8, size=(32, 32))
        image = GrayImage(pixels=plane)
        extractor = FeatureExtractor(FeatureConfig(resolution=6))
        features = extractor.extract(image)
        assert features.dropped_regions  # something was filtered
        names = {source.region_name for source in features.sources}
        assert "quadrant-nw" in names
        assert "quadrant-se" not in names

    def test_keep_full_frame_guarantees_nonempty(self):
        plane = np.full((64, 64), 0.5)
        plane += np.random.default_rng(6).normal(0, 1e-4, size=plane.shape)
        plane = np.clip(plane, 0, 1)
        image = GrayImage(pixels=plane)
        extractor = FeatureExtractor(FeatureConfig(resolution=6))
        features = extractor.extract(image)
        assert features.n_instances >= 1
        assert features.sources[0].region_name == "full"

    def test_constant_image_raises(self):
        image = GrayImage(pixels=np.full((32, 32), 0.5))
        extractor = FeatureExtractor(FeatureConfig(resolution=6))
        with pytest.raises(FeatureError):
            extractor.extract(image)

    def test_threshold_zero_keeps_all_regions(self):
        plane = np.full((64, 64), 0.5)
        plane[:32, :32] = np.random.default_rng(7).uniform(size=(32, 32))
        image = GrayImage(pixels=plane)
        extractor = FeatureExtractor(
            FeatureConfig(resolution=4, variance_threshold=0.0)
        )
        features = extractor.extract(image)
        # Constant regions still fail normalisation and are recorded as
        # dropped, but nothing is dropped by variance alone; regions that
        # intersect the textured quadrant all survive.
        surviving = {source.region_name for source in features.sources}
        assert "full" in surviving

    def test_no_mirrors_config(self):
        extractor = FeatureExtractor(
            FeatureConfig(resolution=6, include_mirrors=False)
        )
        features = extractor.extract(textured_image(8))
        assert features.n_instances == 20
        assert all(not source.mirrored for source in features.sources)

    def test_deterministic(self):
        extractor = FeatureExtractor(FeatureConfig(resolution=6))
        a = extractor.extract(textured_image(9))
        b = extractor.extract(textured_image(9))
        np.testing.assert_array_equal(a.vectors, b.vectors)

    def test_default_threshold_value(self):
        assert DEFAULT_VARIANCE_THRESHOLD == pytest.approx(1e-4)


class TestFeatureSet:
    def test_source_count_mismatch_raises(self):
        with pytest.raises(FeatureError):
            FeatureSet(
                vectors=np.zeros((2, 4)),
                sources=(InstanceSource(0, "full", False),),
            )

    def test_describe_mentions_mirror(self):
        source = InstanceSource(3, "quadrant-ne", True)
        assert "mirrored" in source.describe()
        assert "quadrant-ne" in source.describe()

    def test_describe_plain(self):
        source = InstanceSource(3, "full", False)
        assert source.describe() == "full"
