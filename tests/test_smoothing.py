"""Unit tests for smoothing-and-sampling (Section 3.1.2)."""

import numpy as np
import pytest

from repro.errors import ImageFormatError
from repro.imaging.smoothing import block_grid, smooth_and_sample, smoothed_vector


class TestBlockGrid:
    def test_counts(self):
        row_starts, col_starts, block_rows, block_cols = block_grid(100, 100, 10)
        assert len(row_starts) == 10
        assert len(col_starts) == 10

    def test_paper_kernel_size(self):
        # Paper: kernel is 2m/h x 2n/h.
        _, _, block_rows, block_cols = block_grid(100, 80, 10)
        assert block_rows == 20
        assert block_cols == 16

    def test_fifty_percent_overlap(self):
        row_starts, _, block_rows, _ = block_grid(100, 100, 10)
        strides = np.diff(row_starts)
        # Stride ~ half the block size = ~50% overlap.
        assert np.all(strides >= block_rows // 2 - 2)
        assert np.all(strides <= block_rows // 2 + 2)

    def test_blocks_stay_in_bounds(self):
        for extent in (30, 57, 100, 201):
            row_starts, col_starts, block_rows, block_cols = block_grid(extent, extent, 10)
            assert row_starts[0] == 0
            assert row_starts[-1] + block_rows == extent
            assert col_starts[-1] + block_cols == extent

    def test_starts_are_mirror_symmetric(self):
        # Required so smoothing commutes with left-right mirroring.
        for extent in (31, 64, 97, 100):
            starts, _, block, _ = block_grid(extent, extent, 10)
            span = extent - block
            np.testing.assert_array_equal(starts[::-1], span - starts)

    def test_resolution_one_single_block(self):
        row_starts, col_starts, block_rows, block_cols = block_grid(50, 40, 1)
        assert list(row_starts) == [0]
        assert block_rows <= 50 and block_cols <= 40

    def test_rejects_zero_resolution(self):
        with pytest.raises(ImageFormatError):
            block_grid(100, 100, 0)

    def test_rejects_image_smaller_than_grid(self):
        with pytest.raises(ImageFormatError):
            block_grid(5, 100, 10)


class TestSmoothAndSample:
    def test_output_shape(self):
        out = smooth_and_sample(np.random.default_rng(0).uniform(size=(60, 80)), 10)
        assert out.shape == (10, 10)

    def test_constant_image_gives_constant_matrix(self):
        out = smooth_and_sample(np.full((50, 50), 0.37), 10)
        np.testing.assert_allclose(out, 0.37)

    def test_values_are_block_means(self):
        plane = np.random.default_rng(1).uniform(size=(40, 40))
        out = smooth_and_sample(plane, 5)
        row_starts, col_starts, block_rows, block_cols = block_grid(40, 40, 5)
        expected = plane[
            row_starts[2] : row_starts[2] + block_rows,
            col_starts[3] : col_starts[3] + block_cols,
        ].mean()
        assert out[2, 3] == pytest.approx(expected)

    def test_matches_naive_implementation(self):
        plane = np.random.default_rng(2).uniform(size=(33, 47))
        resolution = 7
        out = smooth_and_sample(plane, resolution)
        row_starts, col_starts, block_rows, block_cols = block_grid(33, 47, resolution)
        naive = np.empty((resolution, resolution))
        for i, r0 in enumerate(row_starts):
            for j, c0 in enumerate(col_starts):
                naive[i, j] = plane[r0 : r0 + block_rows, c0 : c0 + block_cols].mean()
        np.testing.assert_allclose(out, naive, atol=1e-10)

    def test_commutes_with_mirror(self):
        plane = np.random.default_rng(3).uniform(size=(51, 67))
        direct = smooth_and_sample(plane[:, ::-1], 10)
        flipped = smooth_and_sample(plane, 10)[:, ::-1]
        np.testing.assert_allclose(direct, flipped, atol=1e-12)

    def test_preserves_mean_brightness_roughly(self):
        plane = np.random.default_rng(4).uniform(size=(80, 80))
        out = smooth_and_sample(plane, 10)
        assert out.mean() == pytest.approx(plane.mean(), abs=0.02)

    def test_output_within_input_range(self):
        plane = np.random.default_rng(5).uniform(0.2, 0.8, size=(64, 64))
        out = smooth_and_sample(plane, 10)
        assert out.min() >= 0.2 - 1e-12
        assert out.max() <= 0.8 + 1e-12

    def test_gradient_image_monotone_rows(self):
        plane = np.tile(np.linspace(0, 1, 60)[:, None], (1, 60))
        out = smooth_and_sample(plane, 6)
        diffs = np.diff(out[:, 0])
        assert np.all(diffs > 0)

    def test_shift_insensitivity(self):
        # The motivation of Section 3.1.2: a 1-pixel shift barely changes
        # the smoothed matrix.
        rng = np.random.default_rng(6)
        base = np.cumsum(rng.normal(size=(64, 65)), axis=1)
        base = (base - base.min()) / (base.max() - base.min())
        a = smooth_and_sample(base[:, :-1], 10)
        b = smooth_and_sample(base[:, 1:], 10)
        assert np.abs(a - b).max() < 0.1

    def test_rejects_3d(self):
        with pytest.raises(ImageFormatError):
            smooth_and_sample(np.zeros((10, 10, 3)), 5)

    def test_rectangular_input_ok(self):
        out = smooth_and_sample(np.random.default_rng(7).uniform(size=(30, 90)), 6)
        assert out.shape == (6, 6)

    def test_resolution_equal_to_size(self):
        plane = np.random.default_rng(8).uniform(size=(10, 10))
        out = smooth_and_sample(plane, 10)
        assert out.shape == (10, 10)


class TestSmoothedVector:
    def test_flattens(self):
        vec = smoothed_vector(np.random.default_rng(9).uniform(size=(40, 40)), 10)
        assert vec.shape == (100,)

    def test_matches_matrix(self):
        plane = np.random.default_rng(10).uniform(size=(40, 40))
        np.testing.assert_allclose(
            smoothed_vector(plane, 5), smooth_and_sample(plane, 5).reshape(-1)
        )
