"""The exception hierarchy: everything derives from ReproError as documented."""

import pytest

from repro import errors


@pytest.mark.parametrize(
    "exc_type",
    [
        errors.ImageFormatError,
        errors.RegionError,
        errors.FeatureError,
        errors.BagError,
        errors.TrainingError,
        errors.OptimizationError,
        errors.LearnerError,
        errors.QueryError,
        errors.DatabaseError,
        errors.SplitError,
        errors.EvaluationError,
        errors.DatasetError,
    ],
)
def test_all_errors_derive_from_repro_error(exc_type):
    assert issubclass(exc_type, errors.ReproError)


def test_optimization_error_is_a_training_error():
    assert issubclass(errors.OptimizationError, errors.TrainingError)


def test_split_error_is_a_database_error():
    assert issubclass(errors.SplitError, errors.DatabaseError)


def test_repro_error_is_an_exception():
    assert issubclass(errors.ReproError, Exception)


def test_errors_carry_messages():
    exc = errors.BagError("bad bag")
    assert "bad bag" in str(exc)


def test_catching_base_class_catches_leaf():
    with pytest.raises(errors.ReproError):
        raise errors.SplitError("nope")


def test_deadline_error_is_a_retryable_repro_error():
    assert issubclass(errors.DeadlineError, errors.ReproError)
    assert errors.DeadlineError.retryable is True


@pytest.mark.parametrize(
    "exc_type",
    [errors.WorkerUnresponsiveError, errors.WorkerProtocolError],
)
def test_worker_failures_are_retryable_serve_errors(exc_type):
    assert issubclass(exc_type, errors.ServeError)
    assert exc_type.retryable is True


def test_errors_are_not_retryable_by_default():
    assert errors.ReproError.retryable is False
    assert errors.ServeError("x").retryable is False
