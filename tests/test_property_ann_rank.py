"""Property suite: the approximate tier vs the exact ranking contract.

Two different contracts are tested here.  The *reordering* contract is
exact: re-packing a corpus in clustered-centroid order
(:meth:`~repro.core.retrieval.PackedCorpus.reordered_by_centroid`) must
never change any ranking — for every corpus, concept, exclusion set,
category filter and ``top_k``, the reordered view must produce the same
ordering as the original, the exhaustive :class:`Ranker` and
:func:`rank_by_loop`, and the permutation's id sequence must be identical
for any ingestion order of the same bags.  The *approximate* contract is
weaker by design: ``rank_mode="approx"`` results must be a subset of the
true survivor pool with exactly computed distances and valid internal
ordering, and recall@k against the exact ordering must be a well-formed
fraction (its magnitude is the benchmark's concern, not a property).

Instance values, concept points and weights are drawn from the same
dyadic grid as the sharded suite, so distances are exactly representable
and ties are common rather than measure-zero.
"""

import numpy as np
import pytest

from repro.core.concept import LearnedConcept
from repro.core.retrieval import (
    PackedCorpus,
    Ranker,
    RetrievalCandidate,
    rank_by_loop,
)
from repro.index.ann import ApproxRanker, centroid_order, recall_at_k

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

#: Dyadic grid: sums/products of a few of these stay exact in float64.
dyadic = st.integers(-8, 8).map(lambda v: v / 4.0)


@st.composite
def corpora(draw):
    """A small packed corpus with shuffled ids and frequent value ties."""
    n_bags = draw(st.integers(1, 12))
    n_dims = draw(st.integers(1, 3))
    order = draw(st.permutations(range(n_bags)))
    candidates = []
    for position in range(n_bags):
        n_instances = draw(st.integers(1, 3))
        values = draw(
            st.lists(
                dyadic,
                min_size=n_instances * n_dims,
                max_size=n_instances * n_dims,
            )
        )
        candidates.append(
            RetrievalCandidate(
                image_id=f"img-{order[position]:03d}",
                category=draw(st.sampled_from(["a", "b"])),
                instances=np.array(values).reshape(n_instances, n_dims),
            )
        )
    return PackedCorpus.from_candidates(candidates)


@st.composite
def concepts_for(draw, n_dims):
    t = np.array(draw(st.lists(dyadic, min_size=n_dims, max_size=n_dims)))
    w = np.array(
        draw(
            st.lists(
                st.sampled_from([0.0, 0.25, 0.5, 1.0, 2.0]),
                min_size=n_dims,
                max_size=n_dims,
            )
        )
    )
    return LearnedConcept(t=t, w=w, nll=0.0)


def assert_same_ranking(fast, slow):
    assert fast.image_ids == slow.image_ids
    assert fast.total_candidates == slow.total_candidates
    # Dyadic inputs: every path computes the exact same distances.
    np.testing.assert_array_equal(fast.distances, slow.distances)
    assert [e.category for e in fast] == [e.category for e in slow]


@settings(max_examples=60, deadline=None)
@given(data=st.data(), packed=corpora())
def test_reordered_ranking_matches_exhaustive_and_loop(data, packed):
    concept = data.draw(concepts_for(packed.n_dims))
    n_bags = packed.n_bags
    top_k = data.draw(
        st.sampled_from([1, min(3, n_bags), n_bags, n_bags + 5, None])
    )
    group_size = data.draw(st.sampled_from([1, 2, 64]))
    exclude = data.draw(st.sets(st.sampled_from(packed.image_ids)))
    category_filter = data.draw(st.sampled_from([None, "a"]))

    reordered, permutation = packed.reordered_by_centroid(
        group_size=group_size
    )
    assert sorted(permutation.tolist()) == list(range(n_bags))
    fast = Ranker().rank(
        concept, reordered, top_k=top_k, exclude=exclude,
        category_filter=category_filter,
    )
    exhaustive = Ranker(auto_shard=False).rank(
        concept, packed, top_k=top_k, exclude=exclude,
        category_filter=category_filter,
    )
    assert_same_ranking(fast, exhaustive)

    # The loop reference has no top_k/filter; compare against its prefix.
    survivors = [
        c for c in packed.candidates()
        if category_filter is None or c.category == category_filter
    ]
    loop = rank_by_loop(concept, survivors, exclude=exclude)
    kept = len(fast)
    assert fast.image_ids == loop.image_ids[:kept]
    np.testing.assert_array_equal(fast.distances, loop.distances[:kept])


@settings(max_examples=40, deadline=None)
@given(data=st.data(), packed=corpora())
def test_centroid_order_ids_are_ingestion_order_independent(data, packed):
    group_size = data.draw(st.sampled_from([1, 2, 64]))
    shuffle = data.draw(st.permutations(range(packed.n_bags)))
    shuffled = packed.select(
        tuple(packed.image_ids[position] for position in shuffle)
    )
    ids_a = [
        packed.image_ids[i]
        for i in centroid_order(packed, group_size=group_size)
    ]
    ids_b = [
        shuffled.image_ids[i]
        for i in centroid_order(shuffled, group_size=group_size)
    ]
    assert ids_a == ids_b


@settings(max_examples=50, deadline=None)
@given(data=st.data(), packed=corpora())
def test_approx_results_are_exact_over_a_survivor_subset(data, packed):
    concept = data.draw(concepts_for(packed.n_dims))
    n_bags = packed.n_bags
    top_k = data.draw(st.sampled_from([1, min(3, n_bags), n_bags]))
    n_candidates = data.draw(st.sampled_from([1, 2, n_bags, None]))
    exclude = data.draw(st.sets(st.sampled_from(packed.image_ids)))
    category_filter = data.draw(st.sampled_from([None, "a"]))

    approx = ApproxRanker(n_candidates=n_candidates).rank(
        concept, packed, top_k=top_k, exclude=exclude,
        category_filter=category_filter,
    )
    exact = Ranker(auto_shard=False).rank(
        concept, packed, top_k=top_k, exclude=exclude,
        category_filter=category_filter,
    )
    full = Ranker(auto_shard=False).rank(
        concept, packed, exclude=exclude, category_filter=category_filter
    )
    exact_by_id = dict(zip(full.image_ids, full.distances))

    # Same survivor pool, never more entries than the exact answer.
    assert approx.total_candidates == exact.total_candidates
    assert len(approx) <= len(exact)
    # Every returned entry is a true survivor, with its exact distance.
    for entry in approx:
        assert entry.image_id in exact_by_id
        assert entry.distance == exact_by_id[entry.image_id]
        assert entry.image_id not in exclude
        if category_filter is not None:
            assert entry.category == category_filter
    # Internally ordered by (distance, id), like every rank path.
    keys = [(entry.distance, entry.image_id) for entry in approx]
    assert keys == sorted(keys)
    # Recall against the exact ordering is a well-formed fraction.
    recall = recall_at_k(exact, approx, top_k)
    assert 0.0 <= recall <= 1.0
    # A budget covering the whole pool cannot miss anything.
    if n_candidates is not None and n_candidates >= n_bags:
        assert_same_ranking(approx, exact)


@settings(max_examples=30, deadline=None)
@given(data=st.data(), packed=corpora())
def test_approx_mode_routing_matches_the_direct_ranker(data, packed):
    concept = data.draw(concepts_for(packed.n_dims))
    top_k = data.draw(st.sampled_from([1, min(3, packed.n_bags)]))
    packed.configure_rank_index(rank_mode="approx")
    routed = Ranker().rank(concept, packed, top_k=top_k)
    direct = ApproxRanker().rank(concept, packed, top_k=top_k)
    assert_same_ranking(routed, direct)
