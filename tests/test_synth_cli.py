"""CLI tests for the ``repro synth`` command group and corpus serving."""

import pytest

from repro.cli import _build_parser, build_server, main
from repro.datasets.synth import (
    ShardedCorpusReader,
    generate_corpus,
    get_preset,
    load_packed_corpus,
)


@pytest.fixture()
def corpus_dir(tmp_path):
    """A tiny generated corpus directory (feature-mode clean scenario)."""
    import dataclasses

    config = dataclasses.replace(
        get_preset("clean"), mode="feature", feature_dims=4, instances_per_bag=3
    ).with_total_bags(20)
    directory = tmp_path / "corpus"
    generate_corpus(config, directory, shard_size=8)
    return directory


class TestSynthGenerate:
    def test_generates_and_reports(self, tmp_path, capsys):
        out = tmp_path / "corpus"
        code = main(
            [
                "synth", "generate", "--preset", "clean", "--bags", "15",
                "--shard-size", "8", "--out", str(out),
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "bags" in printed and "shards" in printed
        reader = ShardedCorpusReader(out)
        assert reader.n_bags >= 15

    def test_rerun_reports_adoption(self, tmp_path, capsys):
        out = str(tmp_path / "corpus")
        argv = [
            "synth", "generate", "--preset", "clean", "--bags", "10",
            "--shard-size", "4", "--out", out,
        ]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0
        assert "resumed" in capsys.readouterr().out

    def test_seed_override_changes_fingerprint(self, tmp_path):
        a = tmp_path / "a"
        b = tmp_path / "b"
        base = ["synth", "generate", "--preset", "clean", "--bags", "5",
                "--shard-size", "8"]
        assert main(base + ["--out", str(a)]) == 0
        assert main(base + ["--seed", "9", "--out", str(b)]) == 0
        assert (
            ShardedCorpusReader(a).fingerprint != ShardedCorpusReader(b).fingerprint
        )

    def test_unknown_preset_exits_with_error(self, tmp_path, capsys):
        code = main(["synth", "generate", "--preset", "pristine",
                     "--out", str(tmp_path / "x")])
        assert code == 2
        assert "unknown scenario preset" in capsys.readouterr().err


class TestSynthInspect:
    def test_prints_manifest_summary(self, corpus_dir, capsys):
        assert main(["synth", "inspect", "--dir", str(corpus_dir)]) == 0
        printed = capsys.readouterr().out
        assert "fingerprint" in printed
        assert "clean" in printed

    def test_verify_flag_checksums(self, corpus_dir, capsys):
        assert main(["synth", "inspect", "--dir", str(corpus_dir), "--verify"]) == 0
        assert "verified" in capsys.readouterr().out

    def test_missing_directory_exits_with_error(self, tmp_path, capsys):
        code = main(["synth", "inspect", "--dir", str(tmp_path / "nowhere")])
        assert code == 2
        assert "does not exist" in capsys.readouterr().err


class TestSynthPack:
    def test_packs_to_single_archive(self, corpus_dir, tmp_path, capsys):
        out = tmp_path / "packed.npz"
        assert main(["synth", "pack", "--dir", str(corpus_dir),
                     "--out", str(out)]) == 0
        assert "packed" in capsys.readouterr().out
        packed, manifest = load_packed_corpus(out)
        reader = ShardedCorpusReader(corpus_dir)
        assert packed.n_bags == reader.n_bags
        assert manifest["fingerprint"] == reader.fingerprint


class TestServeCorpusDir:
    def test_build_server_opens_sharded_corpus(self, corpus_dir, capsys):
        args = _build_parser().parse_args(
            ["serve", "--corpus-dir", str(corpus_dir), "--port", "0"]
        )
        server = build_server(args)
        assert "opened sharded corpus" in capsys.readouterr().out
        health = server.app.health()
        assert health["status"] == "ok"
        assert health["n_images"] == ShardedCorpusReader(corpus_dir).n_bags
