"""Multi-process serving tests: WorkerPool / WorkerDispatchApp over one
shared-memory corpus, including the bit-identical-ranking property test."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.query import Query
from repro.api.service import RetrievalService
from repro.core.concept import LearnedConcept
from repro.core.retrieval import Ranker, rank_by_loop
from repro.datasets.synth import corpus_from_config
from repro.datasets.synth.config import ScenarioConfig
from repro.errors import CodecError, ReproError, ServeError, SessionError
from repro.serve import codec
from repro.serve.app import handle_safely
from repro.serve.workers import WorkerDispatchApp, WorkerPool

_PARAMS = {"scheme": "identical", "max_iterations": 25, "seed": 5}
_CONFIG = ScenarioConfig(
    name="worker-test",
    mode="feature",
    categories=tuple(f"cat{i}" for i in range(6)),
    feature_dims=6,
    instances_per_bag=3,
    cluster_spread=0.2,
).with_total_bags(48)


@pytest.fixture(scope="module")
def packed():
    return corpus_from_config(_CONFIG)


@pytest.fixture(scope="module")
def local_service(packed):
    return RetrievalService(packed)


@pytest.fixture(scope="module")
def pool(local_service):
    with WorkerPool.from_service(local_service, 2) as pool:
        yield pool


@pytest.fixture(scope="module")
def app(pool):
    return WorkerDispatchApp(pool)


def _concept(packed, bag: int = 0, weight: float = 1.0) -> LearnedConcept:
    return LearnedConcept(
        t=packed.instances[bag], w=np.full(packed.n_dims, weight), nll=0.0
    )


def _rank_payload(concept, **extra) -> dict:
    return codec.envelope(
        "rank", {"concept": codec.encode_concept(concept), **extra}
    )


class TestSharedMapping:
    def test_workers_attach_not_copy(self, pool):
        """Every worker's instance matrix is a view into the shared segment."""
        for pong in pool.ping():
            assert pong["owns_instances"] is False
            assert pong["n_bags"] == 48

    def test_worker_pids_are_distinct_processes(self, pool):
        import os

        pids = pool.worker_pids()
        assert len(set(pids)) == 2
        assert os.getpid() not in pids


class TestBitIdenticalRankings:
    def test_rank_matches_single_process(self, app, packed):
        concept = _concept(packed, bag=3, weight=0.8)
        status, reply = app.handle("rank", _rank_payload(concept))
        assert status == 200, reply
        remote = codec.decode_ranking(reply["ranking"])
        local = Ranker().rank(concept, packed)
        loop = rank_by_loop(concept, packed.candidates())
        assert remote.image_ids == local.image_ids == loop.image_ids
        # Bit-identical to the single-process Ranker (same kernel, same
        # data, different process); the loop reference uses a different
        # floating-point formula, so its distances agree to ulps only.
        np.testing.assert_array_equal(remote.distances, local.distances)
        np.testing.assert_allclose(
            remote.distances, loop.distances, rtol=1e-9, atol=1e-12
        )

    @settings(max_examples=15, deadline=None)
    @given(
        bag=st.integers(min_value=0, max_value=47),
        weight=st.floats(min_value=0.05, max_value=4.0,
                         allow_nan=False, allow_infinity=False),
        top_k=st.sampled_from([1, 3, 48, None]),
    )
    def test_property_pool_rankings_bit_identical(
        self, app, packed, bag, weight, top_k
    ):
        """Worker rankings == Ranker == rank_by_loop, ids *and* distances."""
        concept = _concept(packed, bag=bag, weight=weight)
        status, reply = app.handle("rank", _rank_payload(concept, top_k=top_k))
        assert status == 200, reply
        remote = codec.decode_ranking(reply["ranking"])
        local = Ranker().rank(concept, packed, top_k=top_k)
        assert remote.image_ids == local.image_ids
        np.testing.assert_array_equal(remote.distances, local.distances)
        loop = rank_by_loop(concept, packed.candidates())
        kept = len(remote)
        assert remote.image_ids == loop.image_ids[:kept]
        np.testing.assert_allclose(
            remote.distances, np.asarray(loop.distances[:kept]),
            rtol=1e-9, atol=1e-12
        )

    def test_query_matches_single_process(self, app, local_service, packed):
        query = Query(
            positive_ids=packed.image_ids[:2],
            negative_ids=packed.image_ids[10:12],
            learner="dd",
            params=dict(_PARAMS),
            top_k=5,
        )
        status, reply = app.handle("query", codec.encode_query(query))
        assert status == 200, reply
        remote = codec.decode_query_result(reply)
        reference = local_service.query(query)
        assert remote.ranking.image_ids == reference.ranking.image_ids
        np.testing.assert_array_equal(
            remote.ranking.distances, reference.ranking.distances
        )


class TestSessionAffinity:
    def test_feedback_rounds_route_to_owning_worker(self, app, packed):
        status, first = app.handle(
            "feedback",
            codec.envelope(
                "feedback",
                {
                    "add_positive_ids": [packed.image_ids[0]],
                    "learner": "dd",
                    "params": dict(_PARAMS),
                    "rank": True,
                    "top_k": 3,
                },
            ),
        )
        assert status == 200, first
        token = first["session"]
        # Several follow-up rounds: without affinity, ~half would land on
        # the worker that never saw the session and 404.
        for i in range(4):
            status, reply = app.handle(
                "feedback",
                codec.envelope(
                    "feedback",
                    {
                        "session": token,
                        "add_negative_ids": [packed.image_ids[20 + i]],
                        "rank": False,
                    },
                ),
            )
            assert status == 200, reply
            assert reply["session"] == token
        assert len(reply["negative_ids"]) == 4

    def test_session_rank_follows_affinity(self, app, packed):
        status, created = app.handle(
            "feedback",
            codec.envelope(
                "feedback",
                {
                    "add_positive_ids": [packed.image_ids[5]],
                    "params": dict(_PARAMS),
                    "rank": True,  # trains the model session-rank reuses
                    "top_k": 3,
                },
            ),
        )
        assert status == 200, created
        token = created["session"]
        for _ in range(3):
            status, reply = app.handle(
                "rank", codec.envelope("rank", {"session": token, "top_k": 4})
            )
            assert status == 200, reply

    def test_sessions_stay_isolated_across_workers(self, app, packed):
        tokens = []
        for i in range(6):
            status, reply = app.handle(
                "feedback",
                codec.envelope(
                    "feedback",
                    {
                        "add_positive_ids": [packed.image_ids[i]],
                        "params": dict(_PARAMS),
                        "rank": False,
                    },
                ),
            )
            assert status == 200, reply
            tokens.append(reply["session"])
            assert reply["positive_ids"] == [packed.image_ids[i]]
        assert len(set(tokens)) == 6


class TestErrorsAndAggregation:
    def test_unknown_session_propagates_as_404(self, app):
        status, reply = app.handle(
            "rank", codec.envelope("rank", {"session": "no-such-token"})
        )
        assert status == 404
        assert reply["error"] == "SessionError"
        with pytest.raises(SessionError):
            app.dispatch("rank", codec.envelope("rank", {"session": "nope"}))

    def test_codec_error_propagates_as_400(self, app):
        status, reply = app.handle("rank", codec.envelope("rank", {}))
        assert status == 400
        assert reply["error"] == "CodecError"
        with pytest.raises(CodecError):
            app.dispatch("rank", codec.envelope("rank", {}))

    def test_unknown_endpoint_rejected(self, app):
        status, reply = app.handle("no_such_endpoint", {})
        assert status == 400
        assert reply["error"] == "QueryError"

    def test_handle_safely_passes_worker_statuses_through(self, app):
        status, reply = handle_safely(
            app, "rank", codec.envelope("rank", {"session": "missing"})
        )
        assert status == 404  # not downgraded by re-classification

    def test_health_reports_pool_shape(self, app):
        payload = app.health()
        assert payload["status"] == "ok"
        assert payload["workers"] == 2
        assert payload["n_images"] == 48

    def test_stats_aggregates_across_workers(self, app):
        payload = app.stats()
        assert payload["workers"]["n_workers"] == 2
        assert len(payload["workers"]["per_worker"]) == 2
        summed = sum(w["n_queries"] for w in payload["workers"]["per_worker"])
        assert payload["service"]["n_queries"] == summed
        assert payload["sessions"]["created"] >= 6


class TestCrashRecovery:
    def test_crashed_worker_restarts_automatically(self, local_service):
        with WorkerPool.from_service(local_service, 1) as pool:
            app = WorkerDispatchApp(pool)
            first_pid = pool.worker_pids()[0]
            pool._workers[0].process.kill()
            pool._workers[0].process.join(10.0)
            # The in-flight request fails once (a 500 through the transport
            # glue), then the replacement worker serves.
            status, reply = handle_safely(app, "health", None)
            assert status in (200, 500)
            status, reply = handle_safely(app, "health", None)
            assert status == 200, reply
            assert pool.n_restarts == 1
            assert pool.worker_pids()[0] != first_pid

    def test_ensure_healthy_counts_restarts(self, local_service):
        with WorkerPool.from_service(local_service, 1) as pool:
            assert pool.ensure_healthy() == 0
            pool._workers[0].process.kill()
            pool._workers[0].process.join(10.0)
            assert pool.ensure_healthy() == 1
            assert pool.ping()[0]["owns_instances"] is False


class TestLostSessions:
    def test_feedback_after_owner_crash_is_a_typed_404(self, local_service, packed):
        """A session whose owning worker crashed and restarted answers a
        retryable 404 SessionError, not a silent new-session 200."""
        with WorkerPool.from_service(local_service, 2) as pool:
            app = WorkerDispatchApp(pool)
            status, created = app.handle(
                "feedback",
                codec.envelope(
                    "feedback",
                    {
                        "add_positive_ids": [packed.image_ids[0]],
                        "params": dict(_PARAMS),
                        "rank": False,
                    },
                ),
            )
            assert status == 200, created
            token = created["session"]
            owner = pool._routes[token]
            pool._workers[owner].process.kill()
            pool._workers[owner].process.join(10.0)
            status, reply = app.handle(
                "feedback",
                codec.envelope(
                    "feedback",
                    {"session": token, "add_negative_ids": [packed.image_ids[9]]},
                ),
            )
            assert status == 404
            assert reply["error"] == "SessionError"
            assert "lost to a worker restart" in reply["message"]
            assert reply["retryable"] is True
            assert pool.resilience.get("lost_sessions") >= 1
            # The loss is remembered: replays stay 404 instead of hitting
            # whichever worker now owns the slot.
            status, reply = app.handle(
                "rank", codec.envelope("rank", {"session": token})
            )
            assert status == 404
            assert "lost to a worker restart" in reply["message"]
            # A fresh session on the recovered pool works.
            status, fresh = app.handle(
                "feedback",
                codec.envelope(
                    "feedback",
                    {
                        "add_positive_ids": [packed.image_ids[1]],
                        "params": dict(_PARAMS),
                        "rank": False,
                    },
                ),
            )
            assert status == 200, fresh
            assert fresh["session"] != token


class TestLifecycle:
    def test_stop_is_idempotent_and_rejects_requests(self, local_service):
        pool = WorkerPool.from_service(local_service, 1)
        pool.stop()
        pool.stop()
        with pytest.raises(ServeError, match="stopped"):
            pool.handle("health", None)

    def test_invalid_worker_count_rejected(self, local_service):
        with pytest.raises(ServeError, match="n_workers"):
            WorkerPool.from_service(local_service, 0)

    def test_request_raises_typed_errors(self, pool):
        with pytest.raises(ReproError):
            pool.request("rank", codec.envelope("rank", {}))
        payload = pool.request("health")
        assert payload["status"] == "ok"

    def test_stop_escalates_on_a_wedged_worker_and_leaves_no_orphans(
        self, local_service, packed
    ):
        """stop() must terminate a worker that sits wedged mid-request
        (the stop sentinel cannot be delivered past the in-flight stall)
        instead of hanging, and every worker process must be dead after."""
        import threading
        import time

        from repro.testing.faults import FaultPlan, FaultSpec

        plan = FaultPlan(
            seed=0,
            faults=(FaultSpec(kind="stall", worker=0, after_requests=1,
                              seconds=120.0),),
        )
        pool = WorkerPool.from_service(local_service, 1, fault_plan=plan)
        processes = [worker.process for worker in pool._workers]

        concept = _concept(packed)

        def wedge() -> None:
            # No deadline: this request blocks on the stalled worker until
            # stop() tears the pipe down under it.
            try:
                pool.handle("rank", _rank_payload(concept))
            except ReproError:
                pass

        wedger = threading.Thread(target=wedge, daemon=True)
        wedger.start()
        time.sleep(0.3)  # let the request reach the stall
        started = time.monotonic()
        pool.stop()
        elapsed = time.monotonic() - started
        assert elapsed < 30.0, f"stop() hung for {elapsed:.1f}s on a wedged worker"
        wedger.join(10.0)
        for process in processes:
            process.join(5.0)
            assert not process.is_alive(), f"orphan worker pid {process.pid}"
