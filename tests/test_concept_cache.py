"""The trained-concept cache: fingerprints, LRU behaviour, and its wiring
into the service, the feedback loop and beta selection."""

import numpy as np
import pytest

from repro.api.query import Query
from repro.api.service import RetrievalService
from repro.bags.bag import Bag, BagSet
from repro.core.beta_selection import select_beta
from repro.core.cache import ConceptCache
from repro.core.diverse_density import DiverseDensityTrainer, ExtraStart, TrainerConfig
from repro.core.feedback import FeedbackLoop, select_examples
from repro.errors import TrainingError
from repro.session import RetrievalSession
from tests.conftest import make_planted_bag_set
from tests.test_feedback import ToyCorpus


class CountingTrainer:
    """Wraps a trainer, counting real ``train`` executions."""

    def __init__(self, trainer):
        self._trainer = trainer
        self.calls = 0

    @property
    def fingerprint(self):
        return self._trainer.fingerprint

    @property
    def config(self):
        return self._trainer.config

    def train(self, bag_set, extra_starts=()):
        self.calls += 1
        if extra_starts:
            return self._trainer.train(bag_set, extra_starts=extra_starts)
        return self._trainer.train(bag_set)


def quick_trainer(**overrides) -> DiverseDensityTrainer:
    config = TrainerConfig(scheme="identical", max_iterations=40, **overrides)
    return DiverseDensityTrainer(config)


class TestBagSetFingerprint:
    def test_equal_content_equal_fingerprint(self):
        a, _ = make_planted_bag_set(seed=3)
        b, _ = make_planted_bag_set(seed=3)
        assert a.fingerprint() == b.fingerprint()

    def test_different_instances_differ(self):
        a, _ = make_planted_bag_set(seed=3)
        b, _ = make_planted_bag_set(seed=4)
        assert a.fingerprint() != b.fingerprint()

    def test_label_flip_differs(self):
        instances = np.ones((2, 3))
        a = BagSet([Bag(instances=instances, label=True, bag_id="x")])
        b = BagSet([Bag(instances=instances, label=False, bag_id="x")])
        assert a.fingerprint() != b.fingerprint()

    def test_bag_id_differs(self):
        instances = np.ones((2, 3))
        a = BagSet([Bag(instances=instances, label=True, bag_id="x")])
        b = BagSet([Bag(instances=instances, label=True, bag_id="y")])
        assert a.fingerprint() != b.fingerprint()

    def test_add_invalidates_cached_digest(self):
        bag_set = BagSet([Bag(instances=np.ones((1, 2)), label=True, bag_id="a")])
        before = bag_set.fingerprint()
        bag_set.add(Bag(instances=np.zeros((1, 2)), label=False, bag_id="b"))
        assert bag_set.fingerprint() != before


class TestConceptCache:
    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(TrainingError):
            ConceptCache(max_entries=0)

    def test_lookup_miss_then_hit(self):
        cache = ConceptCache()
        assert cache.lookup("k") is None
        cache.store("k", "value")
        assert cache.lookup("k") == "value"
        stats = cache.stats
        assert (stats.hits, stats.misses, stats.entries) == (1, 1, 1)

    def test_lru_eviction(self):
        cache = ConceptCache(max_entries=2)
        cache.store("a", 1)
        cache.store("b", 2)
        assert cache.lookup("a") == 1  # refresh 'a'; 'b' is now LRU
        cache.store("c", 3)
        assert cache.lookup("b") is None
        assert cache.lookup("a") == 1
        assert cache.lookup("c") == 3

    def test_clear_drops_entries(self):
        cache = ConceptCache()
        cache.store("a", 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.lookup("a") is None

    def test_kind_namespaces_do_not_collide(self):
        bag_set, _ = make_planted_bag_set(seed=5)
        model_key = ConceptCache.key_for("model", "fp", bag_set)
        training_key = ConceptCache.key_for("training", "fp", bag_set)
        assert model_key != training_key

    def test_extra_starts_change_key(self):
        bag_set, _ = make_planted_bag_set(seed=5)
        plain = ConceptCache.key_for("training", "fp", bag_set)
        warm = ConceptCache.key_for(
            "training", "fp", bag_set, (ExtraStart(t=np.zeros(4)),)
        )
        other = ConceptCache.key_for(
            "training", "fp", bag_set, (ExtraStart(t=np.ones(4)),)
        )
        assert len({plain, warm, other}) == 3

    def test_fetch_or_train_caches(self):
        bag_set, _ = make_planted_bag_set(seed=6)
        trainer = CountingTrainer(quick_trainer())
        cache = ConceptCache()
        first, hit_first = cache.fetch_or_train(trainer, bag_set)
        second, hit_second = cache.fetch_or_train(trainer, bag_set)
        assert (hit_first, hit_second) == (False, True)
        assert trainer.calls == 1
        assert second is first

    def test_different_config_misses(self):
        bag_set, _ = make_planted_bag_set(seed=6)
        cache = ConceptCache()
        cache.fetch_or_train(quick_trainer(seed=0), bag_set)
        _, hit = cache.fetch_or_train(quick_trainer(seed=1), bag_set)
        assert not hit

    def test_unfingerprintable_trainer_trains_directly(self):
        class Anonymous:
            def __init__(self):
                self.calls = 0
                self.inner = quick_trainer()

            def train(self, bag_set):
                self.calls += 1
                return self.inner.train(bag_set)

        bag_set, _ = make_planted_bag_set(seed=6)
        cache = ConceptCache()
        trainer = Anonymous()
        cache.fetch_or_train(trainer, bag_set)
        cache.fetch_or_train(trainer, bag_set)
        assert trainer.calls == 2
        assert cache.stats.misses == 0  # never counted against the cache


class TestBagOwnership:
    def test_bag_copies_caller_array(self):
        # The cache keys on bag content, so a bag must not alias a buffer
        # the caller can mutate afterwards.
        buffer = np.ones((2, 3))
        bag = Bag(instances=buffer, label=True, bag_id="a")
        before = BagSet([bag]).fingerprint()
        buffer[0, 0] = 99.0
        assert np.all(bag.instances[0] == 1.0)
        assert BagSet([bag]).fingerprint() == before

    def test_bag_matrix_is_read_only(self):
        bag = Bag(instances=np.ones((2, 3)), label=True, bag_id="a")
        with pytest.raises(ValueError):
            bag.instances[0, 0] = 5.0


class TestInFlightDedup:
    def test_concurrent_compute_if_absent_runs_factory_once(self):
        import threading

        cache = ConceptCache()
        calls = []
        gate = threading.Barrier(4)

        def factory():
            calls.append(1)
            time_like = sum(range(10000))  # a little work
            return time_like

        def worker():
            gate.wait()
            cache.compute_if_absent("shared-key", factory)

        import time  # noqa: F401

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(calls) == 1
        stats = cache.stats
        assert stats.misses == 1
        assert stats.hits == 3

    def test_raising_factory_releases_key_lock_and_counts_miss(self):
        cache = ConceptCache()

        def boom():
            raise TrainingError("no finite optimum")

        with pytest.raises(TrainingError):
            cache.compute_if_absent("k", boom)
        assert cache.stats.misses == 1
        assert cache._key_locks == {}  # no leak on failure
        # The key is computable again afterwards.
        value, hit = cache.compute_if_absent("k", lambda: 42)
        assert (value, hit) == (42, False)

    def test_concurrent_duplicate_batch_query_trains_once(self, tiny_scene_db):
        service = RetrievalService(tiny_scene_db)
        service.warm("dd")
        selection = select_examples(
            tiny_scene_db, tiny_scene_db.image_ids, "waterfall", 3, 3, seed=2
        )
        query = Query(
            positive_ids=selection.positive_ids,
            negative_ids=selection.negative_ids,
            learner="dd",
            params={"scheme": "identical", "max_iterations": 30, "seed": 5},
            top_k=5,
        )
        results = service.batch_query([query] * 4, workers=4)
        stats = service.cache_stats
        assert stats.misses == 1  # in-flight dedup: one training run total
        assert stats.hits == 3
        ids = {tuple(result.ranking.image_ids) for result in results}
        assert len(ids) == 1


class TestFeedbackLoopCache:
    def make_loop(self, corpus, trainer, cache=None, warm_start=False):
        potential = [i for i in corpus.ids if int(i.split("-")[1]) < 4]
        test = [i for i in corpus.ids if int(i.split("-")[1]) >= 4]
        return FeedbackLoop(
            corpus=corpus,
            trainer=trainer,
            target_category="pos",
            potential_ids=potential,
            test_ids=test,
            rounds=3,
            false_positives_per_round=2,
            cache=cache,
            warm_start=warm_start,
        )

    def selection(self, corpus):
        potential = [i for i in corpus.ids if int(i.split("-")[1]) < 4]
        return select_examples(corpus, potential, "pos", 2, 2, seed=0)

    def test_repeated_identical_run_hits_cache_with_zero_retrains(self):
        corpus = ToyCorpus()
        cache = ConceptCache()
        trainer = CountingTrainer(quick_trainer())
        first = self.make_loop(corpus, trainer, cache=cache).run(self.selection(corpus))
        trained_rounds = trainer.calls
        assert trained_rounds == 3

        second = self.make_loop(corpus, trainer, cache=cache).run(self.selection(corpus))
        assert trainer.calls == trained_rounds  # 0 retrains on the repeat
        assert cache.stats.hits >= 3
        assert second.test_ranking.image_ids == first.test_ranking.image_ids
        assert [r.nll for r in second.rounds] == [r.nll for r in first.rounds]

    def test_warm_start_rounds_carry_extra_restart(self):
        corpus = ToyCorpus()
        outcome = self.make_loop(corpus, quick_trainer(), warm_start=True).run(
            self.selection(corpus)
        )
        final = outcome.final_training
        assert final.starts[-1].bag_id == "warm-start"
        assert final.starts[-1].instance_index == -1

    def test_warm_start_with_cache_replays_identically(self):
        corpus = ToyCorpus()
        cache = ConceptCache()
        trainer = CountingTrainer(quick_trainer())
        first = self.make_loop(corpus, trainer, cache=cache, warm_start=True).run(
            self.selection(corpus)
        )
        calls = trainer.calls
        second = self.make_loop(corpus, trainer, cache=cache, warm_start=True).run(
            self.selection(corpus)
        )
        assert trainer.calls == calls
        assert second.test_ranking.image_ids == first.test_ranking.image_ids

    def test_warm_start_never_worse_per_round(self):
        # The warm restart only grows the restart population, so each
        # round's best NLL cannot regress against the cold-started loop.
        corpus = ToyCorpus()
        cold = self.make_loop(corpus, quick_trainer()).run(self.selection(corpus))
        warm = self.make_loop(corpus, quick_trainer(), warm_start=True).run(
            self.selection(corpus)
        )
        assert warm.rounds[0].nll == cold.rounds[0].nll  # round 1 identical


class TestServiceCache:
    def build_query(self, database, seed=0):
        selection = select_examples(
            database, database.image_ids, "waterfall", 3, 3, seed=seed
        )
        return Query(
            positive_ids=selection.positive_ids,
            negative_ids=selection.negative_ids,
            learner="dd",
            params={"scheme": "identical", "max_iterations": 30, "seed": 7},
            top_k=5,
        )

    def test_repeated_query_hits_cache(self, tiny_scene_db):
        service = RetrievalService(tiny_scene_db)
        query = self.build_query(tiny_scene_db)
        first = service.query(query)
        assert service.cache_stats.misses == 1
        second = service.query(query)
        assert service.cache_stats.hits == 1
        assert second.ranking.image_ids == first.ranking.image_ids
        assert second.concept.nll == first.concept.nll

    def test_batch_query_duplicates_train_once(self, tiny_scene_db):
        service = RetrievalService(tiny_scene_db)
        queries = [self.build_query(tiny_scene_db) for _ in range(4)]
        results = service.batch_query(queries, workers=1)
        stats = service.cache_stats
        assert stats.misses == 1
        assert stats.hits == 3
        ids = {tuple(result.ranking.image_ids) for result in results}
        assert len(ids) == 1

    def test_cache_disabled(self, tiny_scene_db):
        service = RetrievalService(tiny_scene_db, cache_size=0)
        assert service.concept_cache is None
        query = self.build_query(tiny_scene_db)
        service.query(query)
        service.query(query)
        stats = service.cache_stats
        assert (stats.hits, stats.misses, stats.max_entries) == (0, 0, 0)

    def test_sanity_rankers_not_cached(self, tiny_scene_db):
        service = RetrievalService(tiny_scene_db)
        selection = select_examples(
            tiny_scene_db, tiny_scene_db.image_ids, "waterfall", 2, 2, seed=1
        )
        query = Query(
            positive_ids=selection.positive_ids,
            negative_ids=selection.negative_ids,
            learner="random",
            params={"seed": 3},
        )
        service.query(query)
        service.query(query)
        stats = service.cache_stats
        assert (stats.hits, stats.misses) == (0, 0)

    def test_session_exposes_cache_stats(self, tiny_scene_db):
        service = RetrievalService(tiny_scene_db)
        session = RetrievalSession(
            tiny_scene_db,
            scheme="identical",
            max_iterations=30,
            service=service,
        )
        session.add_examples("waterfall", n_positive=3, n_negative=3)
        session.train_and_rank(top_k=5)
        assert session.cache_stats.misses == 1
        # Re-fitting the same examples is answered by the cache.
        session.train_and_rank(top_k=5)
        assert session.cache_stats.hits == 1


class TestBetaSelectionCache:
    def test_repeated_sweep_hits_cache(self):
        corpus = ToyCorpus()
        selection = select_examples(corpus, corpus.ids, "pos", 2, 2, seed=0)
        cache = ConceptCache()
        kwargs = dict(
            corpus=corpus,
            selection=selection,
            target_category="pos",
            validation_ids=corpus.ids,
            betas=(0.25, 0.75),
            max_iterations=30,
            cache=cache,
        )
        first = select_beta(**kwargs)
        misses = cache.stats.misses
        assert misses == 2
        second = select_beta(**kwargs)
        assert cache.stats.misses == misses  # every beta served from cache
        assert cache.stats.hits == 2
        assert second.best_beta == first.best_beta


class TestExportImport:
    """Snapshot support: entries leave and re-enter preserving LRU order."""

    def test_export_preserves_lru_order(self):
        cache = ConceptCache(max_entries=8)
        cache.store("a", 1)
        cache.store("b", 2)
        cache.store("c", 3)
        cache.lookup("a")  # refresh: a becomes most recently used
        assert cache.export_entries() == (("b", 2), ("c", 3), ("a", 1))

    def test_import_round_trips_state(self):
        cache = ConceptCache(max_entries=8)
        cache.store("a", 1)
        cache.store("b", 2)
        restored = ConceptCache(max_entries=8)
        assert restored.import_entries(cache.export_entries()) == 2
        assert restored.export_entries() == cache.export_entries()
        # Imported entries are hits-in-waiting, not counted yet.
        assert restored.stats.hits == 0 and restored.stats.misses == 0
        assert restored.lookup("a") == 1
        assert restored.stats.hits == 1

    def test_import_beyond_capacity_keeps_recent_tail(self):
        small = ConceptCache(max_entries=2)
        written = small.import_entries([("a", 1), ("b", 2), ("c", 3)])
        assert written == 3
        assert len(small) == 2
        assert small.lookup("a") is None
        assert small.lookup("b") == 2 and small.lookup("c") == 3
