"""Property suite: the synth corpus is invariant to how it is produced.

The generator's contract is that a corpus is a pure function of its
:class:`~repro.datasets.synth.ScenarioConfig` — shard size, interruption
history and the disk round trip are execution details that must not leave a
trace.  Hypothesis drives those details while the resulting
:class:`~repro.core.retrieval.PackedCorpus` is required to stay
bit-identical (float64 equality, not tolerance) to the one-pass in-memory
reference build.
"""

import numpy as np
import pytest

from repro.datasets.synth import (
    ScenarioConfig,
    ShardedCorpusReader,
    corpus_from_config,
    generate_corpus,
    load_packed_corpus,
    save_packed_corpus,
)

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings, strategies as st  # noqa: E402


@st.composite
def scenario_configs(draw):
    """Small feature-mode scenarios across the interesting knobs."""
    n_categories = draw(st.integers(2, 4))
    return ScenarioConfig(
        name="prop",
        mode="feature",
        categories=tuple(f"cat-{i}" for i in range(n_categories)),
        bags_per_category=draw(st.integers(1, 5)),
        seed=draw(st.integers(0, 3)),
        feature_dims=draw(st.integers(2, 5)),
        instances_per_bag=draw(st.integers(2, 5)),
        clutter=draw(st.sampled_from([0.0, 0.5])),
        label_noise=draw(st.sampled_from([0.0, 0.3])),
        category_skew=draw(st.sampled_from([0.0, 1.0])),
        objects_per_image=draw(st.integers(1, 2)),
    )


def assert_corpora_identical(actual, reference):
    np.testing.assert_array_equal(actual.instances, reference.instances)
    np.testing.assert_array_equal(actual.offsets, reference.offsets)
    assert list(actual.image_ids) == list(reference.image_ids)
    assert list(actual.categories) == list(reference.categories)


common_settings = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


@common_settings
@given(config=scenario_configs(), shard_size=st.integers(1, 7))
def test_shard_size_never_changes_the_corpus(tmp_path_factory, config, shard_size):
    directory = tmp_path_factory.mktemp("shards")
    generate_corpus(config, directory, shard_size=shard_size)
    assert_corpora_identical(
        ShardedCorpusReader(directory).packed(), corpus_from_config(config)
    )


@common_settings
@given(
    config=scenario_configs(),
    shard_size=st.integers(1, 5),
    interrupt_after=st.integers(1, 4),
)
def test_resume_after_interrupt_never_changes_the_corpus(
    tmp_path_factory, config, shard_size, interrupt_after
):
    directory = tmp_path_factory.mktemp("resume")

    class Interrupt(RuntimeError):
        pass

    def bomb(done, total):
        if done == interrupt_after:
            raise Interrupt()

    try:
        generate_corpus(config, directory, shard_size=shard_size, progress=bomb)
    except Interrupt:
        pass
    resumed = generate_corpus(config, directory, shard_size=shard_size)
    assert resumed.n_bags == config.total_bags
    assert_corpora_identical(
        ShardedCorpusReader(directory).packed(), corpus_from_config(config)
    )


@common_settings
@given(config=scenario_configs(), shard_size=st.integers(1, 7))
def test_generate_then_pack_equals_direct_build(
    tmp_path_factory, config, shard_size
):
    directory = tmp_path_factory.mktemp("pack")
    generate_corpus(config, directory / "corpus", shard_size=shard_size)
    reader = ShardedCorpusReader(directory / "corpus")
    path = save_packed_corpus(
        reader.packed(), directory / "corpus.npz",
        fingerprint=reader.fingerprint, config=reader.config,
    )
    loaded, manifest = load_packed_corpus(path)
    assert manifest["fingerprint"] == config.fingerprint
    assert_corpora_identical(loaded, corpus_from_config(config))
