"""Integration tests: the full stack wired together on small data.

These exercise realistic end-to-end flows (database -> features -> DD ->
retrieval -> evaluation) and the cross-module contracts the unit tests
cannot see.
"""

import numpy as np
import pytest

from repro.baselines.rankers import RandomRanker
from repro.core.diverse_density import DiverseDensityTrainer, TrainerConfig
from repro.database.persistence import load_database, save_database
from repro.database.splits import split_database
from repro.eval.experiment import ExperimentConfig, RetrievalExperiment
from repro.eval.metrics import average_precision
from repro.session import RetrievalSession


class TestEndToEndRetrieval:
    def test_mil_beats_random_on_scenes(self, tiny_scene_db):
        config = ExperimentConfig(
            target_category="sunset",
            scheme="identical",
            n_positive=2,
            n_negative=2,
            rounds=2,
            false_positives_per_round=2,
            training_fraction=0.4,
            max_iterations=50,
            seed=1,
        )
        result = RetrievalExperiment(tiny_scene_db, config).run()
        base_rate = result.n_relevant / len(result.relevance)
        # Random ranking has expected AP ~ base rate; demand a clear margin.
        assert result.average_precision > base_rate + 0.1

    def test_mil_beats_random_on_objects(self, tiny_object_db):
        config = ExperimentConfig(
            target_category="car",
            scheme="identical",
            n_positive=2,
            n_negative=2,
            rounds=2,
            false_positives_per_round=2,
            training_fraction=0.5,
            max_iterations=50,
            seed=2,
        )
        result = RetrievalExperiment(tiny_object_db, config).run()
        base_rate = result.n_relevant / len(result.relevance)
        assert result.average_precision > base_rate + 0.1

    def test_random_ranker_near_base_rate(self, tiny_scene_db):
        split = split_database(tiny_scene_db, training_fraction=0.4, seed=0)
        values = []
        for seed in range(8):
            ranking = RandomRanker(seed=seed).rank(tiny_scene_db, split.test_ids)
            values.append(average_precision(ranking.relevance("sunset")))
        base_rate = sum(
            1 for i in split.test_ids if tiny_scene_db.category_of(i) == "sunset"
        ) / len(split.test_ids)
        assert np.mean(values) == pytest.approx(base_rate, abs=0.15)

    def test_feedback_rounds_help_or_hold(self, tiny_scene_db):
        """Three rounds of feedback should not be much worse than one."""
        base = ExperimentConfig(
            target_category="waterfall",
            scheme="identical",
            n_positive=2,
            n_negative=2,
            training_fraction=0.4,
            max_iterations=50,
            seed=3,
            false_positives_per_round=2,
        )
        one = RetrievalExperiment(tiny_scene_db, base.with_overrides(rounds=1)).run()
        three = RetrievalExperiment(tiny_scene_db, base.with_overrides(rounds=3)).run()
        assert three.average_precision >= one.average_precision - 0.25


class TestSessionAgainstExperiment:
    def test_session_matches_engine_ranking(self, tiny_scene_db):
        session = RetrievalSession(
            tiny_scene_db, scheme="identical", max_iterations=50, seed=5
        )
        session.add_examples("field", 2, 2)
        result = session.train_and_rank()
        # Re-rank manually with the same concept; must agree exactly.
        from repro.core.retrieval import RetrievalEngine

        manual = RetrievalEngine().rank(
            session.concept,
            tiny_scene_db.retrieval_candidates(),
            exclude=set(session.positive_ids) | set(session.negative_ids),
        )
        assert manual.image_ids == result.image_ids


class TestPersistenceRoundtripBehaviour:
    def test_rankings_survive_snapshot(self, tmp_path, tiny_scene_db):
        session = RetrievalSession(
            tiny_scene_db, scheme="identical", max_iterations=40, seed=6
        )
        session.add_examples("sunset", 2, 2)
        before = session.train_and_rank()

        path = save_database(tiny_scene_db, tmp_path / "db.npz")
        restored = load_database(path)
        session2 = RetrievalSession(
            restored, scheme="identical", max_iterations=40, seed=6
        )
        session2.add_examples("sunset", 2, 2)
        after = session2.train_and_rank()
        assert before.image_ids == after.image_ids


class TestTrainerOnRealBags:
    def test_concept_lands_near_positive_instances(self, tiny_scene_db):
        from repro.bags.bag import BagSet

        ids = tiny_scene_db.ids_in_category("waterfall")[:3]
        neg_ids = tiny_scene_db.ids_in_category("field")[:3]
        bag_set = BagSet()
        for image_id in ids:
            bag_set.add(tiny_scene_db.bag_for(image_id, label=True))
        for image_id in neg_ids:
            bag_set.add(tiny_scene_db.bag_for(image_id, label=False))
        trainer = DiverseDensityTrainer(
            TrainerConfig(scheme="identical", max_iterations=50)
        )
        concept = trainer.train(bag_set).concept
        # The concept must be closer to every positive bag than to the
        # farthest negative bag (min-distance semantics).
        pos_distances = [
            concept.bag_distance(tiny_scene_db.instances_for(i)) for i in ids
        ]
        neg_distances = [
            concept.bag_distance(tiny_scene_db.instances_for(i)) for i in neg_ids
        ]
        assert max(pos_distances) < max(neg_distances)

    def test_subset_speedup_preserves_quality(self, tiny_scene_db):
        from repro.bags.bag import BagSet

        bag_set = BagSet()
        for image_id in tiny_scene_db.ids_in_category("sunset")[:4]:
            bag_set.add(tiny_scene_db.bag_for(image_id, label=True))
        for image_id in tiny_scene_db.ids_in_category("mountain")[:3]:
            bag_set.add(tiny_scene_db.bag_for(image_id, label=False))
        full = DiverseDensityTrainer(
            TrainerConfig(scheme="identical", max_iterations=50)
        ).train(bag_set)
        subset = DiverseDensityTrainer(
            TrainerConfig(
                scheme="identical", max_iterations=50, start_bag_subset=2, seed=1
            )
        ).train(bag_set)
        # Fewer starts, same objective landscape: NLL within a tolerance.
        assert subset.concept.nll <= full.concept.nll * 1.5 + 1.0
        assert subset.n_starts < full.n_starts
