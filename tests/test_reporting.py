"""Unit tests for ASCII reporting helpers."""

import numpy as np
import pytest

from repro.errors import EvaluationError
from repro.eval.reporting import ascii_curve, ascii_table, format_weight_matrix


class TestAsciiTable:
    def test_renders_headers_and_rows(self):
        text = ascii_table(["name", "value"], [["alpha", 1.0], ["beta", 0.25]])
        assert "name" in text
        assert "alpha" in text
        assert "0.250" in text

    def test_title_included(self):
        text = ascii_table(["x"], [[1.0]], title="Table 3.1")
        assert text.splitlines()[0] == "Table 3.1"

    def test_column_alignment(self):
        text = ascii_table(["a", "b"], [["xxxxxx", 1.0]])
        lines = text.splitlines()
        assert lines[0].index("|") == lines[2].index("|")

    def test_custom_float_format(self):
        text = ascii_table(["v"], [[0.123456]], float_format="{:.5f}")
        assert "0.12346" in text

    def test_ragged_rows_rejected(self):
        with pytest.raises(EvaluationError):
            ascii_table(["a", "b"], [["only-one"]])

    def test_no_columns_rejected(self):
        with pytest.raises(EvaluationError):
            ascii_table([], [])

    def test_empty_rows_ok(self):
        text = ascii_table(["a"], [])
        assert "a" in text


class TestAsciiCurve:
    def test_renders_grid(self):
        x = np.linspace(0, 1, 30)
        y = x**2
        text = ascii_curve(x, y, title="squares")
        assert "squares" in text
        assert "*" in text

    def test_fixed_y_range(self):
        text = ascii_curve(np.array([0, 1]), np.array([0.2, 0.4]), y_range=(0, 1))
        assert "1.000" in text

    def test_constant_y_handled(self):
        text = ascii_curve(np.array([0.0, 1.0]), np.array([0.5, 0.5]))
        assert "*" in text

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(EvaluationError):
            ascii_curve(np.zeros(3), np.zeros(4))

    def test_tiny_grid_rejected(self):
        with pytest.raises(EvaluationError):
            ascii_curve(np.zeros(2), np.zeros(2), width=5, height=2)


class TestWeightMatrix:
    def test_renders_all_entries(self):
        matrix = np.arange(9, dtype=float).reshape(3, 3)
        text = format_weight_matrix(matrix)
        assert "8.00" in text
        assert len(text.splitlines()) == 3

    def test_rejects_1d(self):
        with pytest.raises(EvaluationError):
            format_weight_matrix(np.zeros(4))
