"""Unit tests for the shared-memory corpus layout (repro.serve.shm)."""

import json

import numpy as np
import pytest

from repro.core.retrieval import Ranker, rank_by_loop
from repro.core.concept import LearnedConcept
from repro.datasets.synth import corpus_from_config
from repro.datasets.synth.config import ScenarioConfig
from repro.errors import ServeError
from repro.serve.shm import SharedPackedCorpus


@pytest.fixture(scope="module")
def packed():
    config = ScenarioConfig(
        name="shm-test",
        mode="feature",
        categories=tuple(f"cat{i}" for i in range(6)),
        feature_dims=7,
        instances_per_bag=3,
        cluster_spread=0.15,
    ).with_total_bags(48)
    return corpus_from_config(config)


@pytest.fixture()
def shared(packed):
    shared = SharedPackedCorpus.create(packed)
    yield shared
    shared.unlink()


class TestRoundTrip:
    def test_attached_corpus_equals_original(self, packed, shared):
        attached = SharedPackedCorpus.attach(shared.spec)
        try:
            corpus = attached.corpus()
            np.testing.assert_array_equal(corpus.instances, packed.instances)
            np.testing.assert_array_equal(corpus.offsets, packed.offsets)
            assert corpus.image_ids == packed.image_ids
            assert corpus.categories == packed.categories
            np.testing.assert_array_equal(corpus.id_array, packed.id_array)
            np.testing.assert_array_equal(
                corpus.category_array, packed.category_array
            )
        finally:
            attached.close()

    def test_attached_arrays_are_views_not_copies(self, shared):
        attached = SharedPackedCorpus.attach(shared.spec)
        try:
            corpus = attached.corpus()
            assert not corpus.instances.flags["OWNDATA"]
            assert not corpus.offsets.flags["OWNDATA"]
            assert not corpus.id_array.flags["OWNDATA"]
        finally:
            attached.close()

    def test_mutation_visible_through_segment(self, shared):
        """Both handles map the same physical memory."""
        attached = SharedPackedCorpus.attach(shared.spec)
        try:
            owner_view = shared.corpus().instances
            other_view = attached.corpus().instances
            original = owner_view[0, 0]
            owner_view[0, 0] = original + 1.0
            assert other_view[0, 0] == original + 1.0
            owner_view[0, 0] = original
        finally:
            attached.close()

    def test_spec_is_json_safe(self, shared):
        round_tripped = json.loads(json.dumps(shared.spec))
        attached = SharedPackedCorpus.attach(round_tripped)
        try:
            assert attached.corpus().n_bags == shared.corpus().n_bags
        finally:
            attached.close()

    def test_squares_cache_is_shared(self, packed, shared):
        attached = SharedPackedCorpus.attach(shared.spec)
        try:
            corpus = attached.corpus()
            assert "squared" in shared.spec["arrays"]
            # min_distances uses the squares cache; correctness proves the
            # precomputed shared cache holds the right values.
            concept = LearnedConcept(
                t=packed.instances[0], w=np.ones(packed.n_dims), nll=0.0
            )
            np.testing.assert_array_equal(
                corpus.min_distances(concept), packed.min_distances(concept)
            )
        finally:
            attached.close()


class TestIndexSharing:
    def test_cached_index_rides_along(self, packed):
        index = packed.shard_index()
        shared = SharedPackedCorpus.create(packed)
        try:
            attached = SharedPackedCorpus.attach(shared.spec)
            try:
                restored = attached.corpus().cached_shard_index
                assert restored is not None
                np.testing.assert_array_equal(restored.lower, index.lower)
                np.testing.assert_array_equal(restored.upper, index.upper)
                np.testing.assert_array_equal(
                    restored.boundaries, index.boundaries
                )
                assert restored.group_size == index.group_size
                assert not restored.lower.flags["OWNDATA"]
            finally:
                attached.close()
        finally:
            shared.unlink()

    def test_rankings_identical_through_shared_corpus(self, packed, shared):
        attached = SharedPackedCorpus.attach(shared.spec)
        try:
            corpus = attached.corpus()
            concept = LearnedConcept(
                t=packed.instances[4], w=np.full(packed.n_dims, 0.7), nll=0.0
            )
            via_shared = Ranker().rank(concept, corpus)
            via_local = Ranker().rank(concept, packed)
            via_loop = rank_by_loop(concept, packed.candidates())
            assert [e.image_id for e in via_shared] == [
                e.image_id for e in via_local
            ]
            assert [e.image_id for e in via_shared] == [
                e.image_id for e in via_loop
            ]
            np.testing.assert_array_equal(
                [e.distance for e in via_shared],
                [e.distance for e in via_local],
            )
        finally:
            attached.close()


class TestLifecycleAndErrors:
    def test_unknown_spec_version_rejected(self, shared):
        bad = dict(shared.spec, version=99)
        with pytest.raises(ServeError, match="version"):
            SharedPackedCorpus.attach(bad)

    def test_missing_segment_rejected(self, shared):
        bad = dict(shared.spec, segment="psm_repro_does_not_exist")
        with pytest.raises(ServeError, match="cannot attach"):
            SharedPackedCorpus.attach(bad)

    def test_out_of_range_offsets_rejected(self, shared):
        bad = json.loads(json.dumps(shared.spec))
        bad["arrays"]["instances"]["offset"] = shared.nbytes
        with pytest.raises(ServeError, match="outside"):
            SharedPackedCorpus.attach(bad)

    def test_only_owner_can_unlink(self, shared):
        attached = SharedPackedCorpus.attach(shared.spec)
        try:
            with pytest.raises(ServeError, match="creating process"):
                attached.unlink()
        finally:
            attached.close()

    def test_closed_handle_refuses_corpus(self, shared):
        attached = SharedPackedCorpus.attach(shared.spec)
        attached.close()
        with pytest.raises(ServeError, match="closed"):
            attached.corpus()

    def test_unlink_is_idempotent(self, packed):
        shared = SharedPackedCorpus.create(packed)
        shared.unlink()
        shared.unlink()  # second call must not raise

    def test_segment_gone_after_unlink(self, packed):
        shared = SharedPackedCorpus.create(packed)
        spec = shared.spec
        shared.unlink()
        with pytest.raises(ServeError, match="cannot attach"):
            SharedPackedCorpus.attach(spec)

    def test_context_manager_owner_unlinks(self, packed):
        with SharedPackedCorpus.create(packed) as shared:
            spec = shared.spec
        with pytest.raises(ServeError, match="cannot attach"):
            SharedPackedCorpus.attach(spec)
