"""Tests for the experiment registry (light configs; heavy runs live in benchmarks)."""

import numpy as np
import pytest

from repro.errors import EvaluationError
from repro.experiments import resolve_scale
from repro.experiments.correlation_demos import (
    figure_3_1,
    figure_3_3_3_4,
    table_3_1,
)
from repro.experiments.sample_runs import figure_4_7
from repro.experiments.scale import BenchScale


class TestScale:
    def test_default_quick(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert resolve_scale().name == "quick"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "paper")
        assert resolve_scale().name == "paper"

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "paper")
        assert resolve_scale("quick").name == "quick"

    def test_unknown_rejected(self):
        with pytest.raises(EvaluationError):
            resolve_scale("huge")

    def test_paper_scale_matches_paper_sizes(self):
        scale = resolve_scale("paper")
        assert scale.scene_images_per_category == 100
        assert scale.object_images_per_category == 12
        assert scale.start_bag_subset is None
        assert scale.rounds == 3

    def test_scales_are_frozen(self):
        scale = resolve_scale("quick")
        assert isinstance(scale, BenchScale)
        with pytest.raises(AttributeError):
            scale.rounds = 5  # type: ignore[misc]


class TestTable31:
    def test_same_category_pairs_more_correlated(self):
        rows = table_3_1(size=(64, 64))
        same = [r.correlation for r in rows if r.same_category]
        cross = [r.correlation for r in rows if not r.same_category]
        assert min(same) > max(cross)

    def test_six_rows_like_the_paper(self):
        rows = table_3_1(size=(64, 64))
        assert len(rows) == 6
        assert sum(r.same_category for r in rows) == 4


class TestFigure31:
    def test_three_panels_exact(self):
        rows = figure_3_1()
        by_label = {r.label: r for r in rows}
        assert by_label["perfectly correlated"].correlation == pytest.approx(1.0)
        assert by_label["uncorrelated"].correlation == pytest.approx(0.0, abs=1e-9)
        assert by_label["inversely correlated"].correlation == pytest.approx(-1.0)

    def test_expected_targets_recorded(self):
        for row in figure_3_1():
            assert row.correlation == pytest.approx(row.expected, abs=1e-6)


class TestFigure33:
    def test_region_beats_whole(self):
        result = figure_3_3_3_4(size=(64, 64), pool=8)
        assert result.matched_region_correlation > result.whole_image_correlation
        # The paper's qualitative claim: whole-image correlation is weak,
        # matched regions correlate clearly.
        assert result.whole_image_correlation < 0.45
        assert result.matched_region_correlation > 0.4


class TestFigure47:
    def test_misleading_curve(self):
        curve = figure_4_7()
        recalls, precisions = curve.points
        assert precisions[0] == pytest.approx(0.0)  # wrong first image
        assert precisions[7] == pytest.approx(7 / 8)  # strong recovery
        assert np.all((precisions >= 0) & (precisions <= 1))
