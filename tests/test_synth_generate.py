"""Tests for deterministic bag generation and the streamed corpus driver."""

import numpy as np
import pytest

from repro.core.concept import LearnedConcept
from repro.core.retrieval import Ranker
from repro.datasets.synth import (
    ScenarioConfig,
    ShardedCorpusReader,
    corpus_from_config,
    feature_center,
    generate_bag,
    generate_corpus,
    iter_bags,
)
from repro.errors import DatasetError


def tiny_config(**overrides) -> ScenarioConfig:
    defaults = dict(
        name="gen-test",
        mode="feature",
        categories=("alpha", "beta", "gamma"),
        bags_per_category=6,
        feature_dims=4,
        instances_per_bag=4,
    )
    defaults.update(overrides)
    return ScenarioConfig(**defaults)


class TestBagGeneration:
    def test_bag_is_pure_in_config_category_index(self):
        config = tiny_config()
        first = generate_bag(config, "beta", 3)
        second = generate_bag(config, "beta", 3)
        assert first.bag_id == second.bag_id == "beta-0000003"
        np.testing.assert_array_equal(first.instances, second.instances)

    def test_slice_never_needs_its_prefix(self):
        config = tiny_config()
        full = list(iter_bags(config))
        window = list(iter_bags(config, 5, 12))
        assert [b.bag_id for b in window] == [b.bag_id for b in full[5:12]]
        for sliced, reference in zip(window, full[5:12]):
            np.testing.assert_array_equal(sliced.instances, reference.instances)

    def test_content_invariant_under_label_noise(self):
        clean = tiny_config()
        noisy = tiny_config(label_noise=0.5)
        for index in range(4):
            a = generate_bag(clean, "alpha", index)
            b = generate_bag(noisy, "alpha", index)
            np.testing.assert_array_equal(a.instances, b.instances)
            assert b.true_category == "alpha"
            assert b.bag_id == a.bag_id

    def test_label_noise_flips_some_recorded_labels(self):
        noisy = tiny_config(label_noise=0.5, bags_per_category=20)
        flipped = [
            bag for bag in iter_bags(noisy) if bag.category != bag.true_category
        ]
        assert flipped, "0.5 label noise flipped nothing across 60 bags"

    def test_distractors_sit_near_other_centres(self):
        config = tiny_config(objects_per_image=2, cluster_spread=0.01)
        bag = generate_bag(config, "alpha", 0)
        own = feature_center(config, "alpha")
        distractor = bag.instances[-1]
        assert np.linalg.norm(distractor - own) > 1.0
        others = [
            np.linalg.norm(distractor - feature_center(config, name))
            for name in ("beta", "gamma")
        ]
        assert min(others) < 0.5

    def test_clutter_inflates_bag_envelope(self):
        tight = generate_bag(tiny_config(instances_per_bag=16), "alpha", 0)
        loose = generate_bag(
            tiny_config(instances_per_bag=16, clutter=0.8), "alpha", 0
        )
        spread = lambda bag: float(
            np.ptp(bag.instances, axis=0).max()  # noqa: E731
        )
        assert spread(loose) > spread(tight) * 5

    def test_unknown_category_rejected(self):
        with pytest.raises(DatasetError, match="not part of this scenario"):
            generate_bag(tiny_config(), "delta", 0)

    def test_negative_index_rejected(self):
        with pytest.raises(DatasetError, match=">= 0"):
            generate_bag(tiny_config(), "alpha", -1)

    def test_image_mode_bags_featurise(self):
        config = ScenarioConfig(
            name="img", categories=("waterfall", "sunset"), bags_per_category=1,
            image_size=32, resolution=4,
        )
        bag = generate_bag(config, "waterfall", 0)
        assert bag.instances.shape[1] == config.n_dims
        assert bag.instances.shape[0] >= 1


class TestGenerateCorpus:
    def test_sharded_equals_in_memory_build(self, tmp_path):
        config = tiny_config()
        report = generate_corpus(config, tmp_path / "c", shard_size=5)
        assert report.n_shards == 4
        assert report.n_shards_skipped == 0
        packed = ShardedCorpusReader(tmp_path / "c").packed()
        reference = corpus_from_config(config)
        np.testing.assert_array_equal(packed.instances, reference.instances)
        np.testing.assert_array_equal(packed.offsets, reference.offsets)
        assert list(packed.image_ids) == list(reference.image_ids)
        assert list(packed.categories) == list(reference.categories)

    def test_rerun_adopts_every_shard(self, tmp_path):
        config = tiny_config()
        generate_corpus(config, tmp_path / "c", shard_size=5)
        again = generate_corpus(config, tmp_path / "c", shard_size=5)
        assert again.n_shards_skipped == again.n_shards == 4
        assert again.bags_per_second == 0.0

    def test_resume_after_interrupt_is_bit_identical(self, tmp_path):
        config = tiny_config()

        class Interrupt(RuntimeError):
            pass

        def bomb(done, total):
            if done == 2:
                raise Interrupt()

        with pytest.raises(Interrupt):
            generate_corpus(config, tmp_path / "c", shard_size=5, progress=bomb)
        # The interrupted directory is readable only as "incomplete".
        with pytest.raises(DatasetError, match="incomplete"):
            ShardedCorpusReader(tmp_path / "c")

        resumed = generate_corpus(config, tmp_path / "c", shard_size=5)
        assert resumed.n_shards_skipped == 2
        packed = ShardedCorpusReader(tmp_path / "c").packed()
        reference = corpus_from_config(config)
        np.testing.assert_array_equal(packed.instances, reference.instances)
        assert list(packed.image_ids) == list(reference.image_ids)

    def test_resume_rejects_different_fingerprint(self, tmp_path):
        generate_corpus(tiny_config(), tmp_path / "c", shard_size=5)
        with pytest.raises(DatasetError, match="refusing to resume"):
            generate_corpus(tiny_config(seed=99), tmp_path / "c", shard_size=5)

    def test_resume_rejects_different_shard_size(self, tmp_path):
        generate_corpus(tiny_config(), tmp_path / "c", shard_size=5)
        with pytest.raises(DatasetError, match="shard size"):
            generate_corpus(tiny_config(), tmp_path / "c", shard_size=3)

    def test_fresh_run_replaces_other_corpus(self, tmp_path):
        generate_corpus(tiny_config(), tmp_path / "c", shard_size=5)
        other = tiny_config(seed=99)
        report = generate_corpus(other, tmp_path / "c", shard_size=5, resume=False)
        assert report.n_shards_skipped == 0
        reader = ShardedCorpusReader(tmp_path / "c")
        assert reader.fingerprint == other.fingerprint

    def test_skewed_corpus_counts_match_config(self, tmp_path):
        config = tiny_config(category_skew=1.0, bags_per_category=8)
        generate_corpus(config, tmp_path / "c", shard_size=7)
        packed = ShardedCorpusReader(tmp_path / "c").packed()
        counts = config.category_counts()
        for category, expected in zip(config.categories, counts):
            assert sum(1 for c in packed.categories if c == category) == expected


class TestRankEquivalence:
    def test_shards_and_one_pass_rank_identically(self, tmp_path):
        config = tiny_config(bags_per_category=10, cluster_spread=0.05)
        generate_corpus(config, tmp_path / "c", shard_size=8)
        from_shards = ShardedCorpusReader(tmp_path / "c").packed()
        direct = corpus_from_config(config)

        rng = np.random.default_rng(5)
        concept = LearnedConcept(
            t=feature_center(config, "beta") + rng.normal(scale=0.02, size=4),
            w=rng.uniform(0.5, 1.0, size=4),
            nll=0.0,
        )
        ranker = Ranker()
        a = ranker.rank(concept, from_shards, top_k=10)
        b = ranker.rank(concept, direct, top_k=10)
        assert a.image_ids == b.image_ids
        assert [entry.distance for entry in a.ranked] == [
            entry.distance for entry in b.ranked
        ]
        assert a.image_ids[0].startswith("beta-")
