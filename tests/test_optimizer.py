"""Unit tests for the unconstrained minimisers."""

import numpy as np
import pytest

from repro.core.optimizer import (
    ArmijoGradientDescent,
    LBFGSOptimizer,
    make_minimizer,
)
from repro.errors import OptimizationError


def quadratic(center: np.ndarray, scales: np.ndarray):
    def fun(x: np.ndarray):
        diff = x - center
        value = float(0.5 * (scales * diff * diff).sum())
        grad = scales * diff
        return value, grad

    return fun


def rosenbrock(x: np.ndarray):
    value = float(100 * (x[1] - x[0] ** 2) ** 2 + (1 - x[0]) ** 2)
    grad = np.array(
        [
            -400 * x[0] * (x[1] - x[0] ** 2) - 2 * (1 - x[0]),
            200 * (x[1] - x[0] ** 2),
        ]
    )
    return value, grad


@pytest.mark.parametrize("backend", ["armijo", "lbfgs"])
class TestMinimizers:
    def test_quadratic_minimum(self, backend):
        center = np.array([1.0, -2.0, 0.5])
        minimizer = make_minimizer(backend, max_iterations=500)
        outcome = minimizer.minimize(quadratic(center, np.ones(3)), np.zeros(3))
        np.testing.assert_allclose(outcome.x, center, atol=1e-3)
        assert outcome.value == pytest.approx(0.0, abs=1e-6)

    def test_anisotropic_quadratic(self, backend):
        center = np.array([3.0, -1.0])
        scales = np.array([100.0, 1.0])
        minimizer = make_minimizer(backend, max_iterations=2000)
        outcome = minimizer.minimize(quadratic(center, scales), np.array([0.0, 0.0]))
        np.testing.assert_allclose(outcome.x, center, atol=1e-2)

    def test_starts_at_minimum(self, backend):
        center = np.array([1.0, 1.0])
        minimizer = make_minimizer(backend)
        outcome = minimizer.minimize(quadratic(center, np.ones(2)), center.copy())
        assert outcome.value == pytest.approx(0.0, abs=1e-12)
        assert outcome.converged

    def test_monotone_improvement(self, backend):
        fun = quadratic(np.array([2.0, 2.0]), np.ones(2))
        start_value, _ = fun(np.zeros(2))
        minimizer = make_minimizer(backend, max_iterations=50)
        outcome = minimizer.minimize(fun, np.zeros(2))
        assert outcome.value <= start_value


class TestArmijo:
    def test_rosenbrock_progress(self):
        # Full convergence on Rosenbrock takes many steps; verify solid
        # progress and finiteness.
        minimizer = ArmijoGradientDescent(max_iterations=2000, gradient_tolerance=1e-8)
        outcome = minimizer.minimize(rosenbrock, np.array([-1.2, 1.0]))
        assert outcome.value < 1.0

    def test_invalid_config_rejected(self):
        with pytest.raises(OptimizationError):
            ArmijoGradientDescent(max_iterations=0)
        with pytest.raises(OptimizationError):
            ArmijoGradientDescent(backtrack_factor=1.5)
        with pytest.raises(OptimizationError):
            ArmijoGradientDescent(armijo_c=0.0)

    def test_nonfinite_start_raises(self):
        def bad(x):
            return np.nan, np.zeros_like(x)

        with pytest.raises(OptimizationError):
            ArmijoGradientDescent().minimize(bad, np.zeros(2))

    def test_lbfgs_nonfinite_start_raises(self):
        # Both backends must reject a NaN starting objective instead of
        # handing scipy a poisoned line search.
        def bad(x):
            return np.nan, np.zeros_like(x)

        with pytest.raises(OptimizationError):
            LBFGSOptimizer().minimize(bad, np.zeros(2))

    def test_iteration_cap_respected(self):
        minimizer = ArmijoGradientDescent(max_iterations=3, gradient_tolerance=0.0)
        outcome = minimizer.minimize(rosenbrock, np.array([-1.2, 1.0]))
        assert outcome.n_iterations <= 3

    def test_works_with_nongradient_directions(self):
        # The alpha-hack feeds a damped (non-gradient) field; Armijo must
        # still make progress because it is a descent direction.
        center = np.array([1.0, 1.0, 1.0])

        def damped(x):
            value, grad = quadratic(center, np.ones(3))(x)
            grad = grad.copy()
            grad[2] /= 50.0
            return value, grad

        outcome = ArmijoGradientDescent(max_iterations=3000).minimize(
            damped, np.zeros(3)
        )
        assert outcome.value < 1e-4


class TestLBFGS:
    def test_rosenbrock_converges(self):
        minimizer = LBFGSOptimizer(max_iterations=500)
        outcome = minimizer.minimize(rosenbrock, np.array([-1.2, 1.0]))
        np.testing.assert_allclose(outcome.x, [1.0, 1.0], atol=1e-4)

    def test_invalid_config_rejected(self):
        with pytest.raises(OptimizationError):
            LBFGSOptimizer(max_iterations=0)


class TestFactory:
    def test_unknown_backend(self):
        with pytest.raises(OptimizationError):
            make_minimizer("newton")

    def test_known_backends(self):
        assert isinstance(make_minimizer("armijo"), ArmijoGradientDescent)
        assert isinstance(make_minimizer("lbfgs"), LBFGSOptimizer)
