"""Property-based tests of the Diverse Density objective."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.bags.bag import Bag, BagSet
from repro.core.objective import DiverseDensityObjective


@st.composite
def mil_problem(draw):
    """A random small bag set plus a query point and weights."""
    n_dims = draw(st.integers(min_value=1, max_value=6))
    n_pos = draw(st.integers(min_value=1, max_value=4))
    n_neg = draw(st.integers(min_value=0, max_value=3))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    bag_set = BagSet()
    for index in range(n_pos):
        n_inst = int(rng.integers(1, 6))
        bag_set.add(
            Bag(
                instances=rng.normal(0, 2, size=(n_inst, n_dims)),
                label=True,
                bag_id=f"p{index}",
            )
        )
    for index in range(n_neg):
        n_inst = int(rng.integers(1, 6))
        bag_set.add(
            Bag(
                instances=rng.normal(0, 2, size=(n_inst, n_dims)),
                label=False,
                bag_id=f"n{index}",
            )
        )
    t = rng.normal(0, 2, size=n_dims)
    w = rng.uniform(0.01, 3.0, size=n_dims)
    return bag_set, t, w


@given(mil_problem())
@settings(max_examples=150, deadline=None)
def test_nll_nonnegative_and_finite(problem):
    bag_set, t, w = problem
    objective = DiverseDensityObjective(bag_set)
    value = objective.value(t, w)
    assert np.isfinite(value)
    assert value >= -1e-9


@given(mil_problem())
@settings(max_examples=100, deadline=None)
def test_gradients_finite(problem):
    bag_set, t, w = problem
    objective = DiverseDensityObjective(bag_set)
    value, grad_t, grad_w = objective.value_and_grad(t, w)
    assert np.all(np.isfinite(grad_t))
    assert np.all(np.isfinite(grad_w))


@given(mil_problem())
@settings(max_examples=75, deadline=None)
def test_gradient_matches_finite_differences(problem):
    bag_set, t, w = problem
    objective = DiverseDensityObjective(bag_set)
    _, grad_t, grad_w = objective.value_and_grad(t, w)
    eps = 1e-6
    for k in range(min(t.size, 3)):  # spot-check up to 3 coordinates
        tp, tm = t.copy(), t.copy()
        tp[k] += eps
        tm[k] -= eps
        numeric = (objective.value(tp, w) - objective.value(tm, w)) / (2 * eps)
        assert abs(grad_t[k] - numeric) <= 1e-4 * max(1.0, abs(numeric))
        wp, wm = w.copy(), w.copy()
        wp[k] += eps
        wm[k] = max(wm[k] - eps, 0.0)
        numeric_w = (objective.value(t, wp) - objective.value(t, wm)) / (wp[k] - wm[k])
        assert abs(grad_w[k] - numeric_w) <= 1e-3 * max(1.0, abs(numeric_w))


@given(mil_problem())
@settings(max_examples=100, deadline=None)
def test_bag_probabilities_in_unit_interval(problem):
    bag_set, t, w = problem
    objective = DiverseDensityObjective(bag_set)
    pos, neg = objective.bag_probabilities(t, w)
    assert np.all((pos >= 0) & (pos <= 1))
    assert np.all((neg >= 0) & (neg <= 1))


@given(mil_problem())
@settings(max_examples=100, deadline=None)
def test_nll_decomposes_over_bags(problem):
    """NLL of the whole set equals the sum of per-bag NLL contributions."""
    bag_set, t, w = problem
    objective = DiverseDensityObjective(bag_set)
    pos, neg = objective.bag_probabilities(t, w)
    pos = np.maximum(pos, 1e-300)
    neg = np.maximum(neg, 1e-300)
    expected = -float(np.log(pos).sum()) - float(np.log(neg).sum())
    np.testing.assert_allclose(objective.value(t, w), expected, rtol=1e-6, atol=1e-9)


@given(mil_problem())
@settings(max_examples=100, deadline=None)
def test_squared_parametrisation_consistent(problem):
    bag_set, t, w = problem
    objective = DiverseDensityObjective(bag_set)
    s = np.sqrt(w)
    value_sq, _, _ = objective.value_and_grad_squared(t, s)
    np.testing.assert_allclose(value_sq, objective.value(t, w), rtol=1e-9)
