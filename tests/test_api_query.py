"""Unit tests for the frozen Query / QueryResult request-response objects."""

import dataclasses

import pytest

from repro.api.query import Query
from repro.errors import QueryError, ReproError


class TestQueryValidation:
    def test_minimal_query(self):
        query = Query(positive_ids=("a",))
        assert query.positive_ids == ("a",)
        assert query.negative_ids == ()
        assert query.learner == "dd"
        assert query.top_k is None

    def test_sequences_coerced_to_tuples(self):
        query = Query(positive_ids=["a", "b"], negative_ids=["c"],
                      candidate_ids=["d", "e"])
        assert query.positive_ids == ("a", "b")
        assert query.negative_ids == ("c",)
        assert query.candidate_ids == ("d", "e")

    def test_requires_positive_example(self):
        with pytest.raises(QueryError, match="positive"):
            Query(positive_ids=())

    def test_query_error_is_repro_error(self):
        with pytest.raises(ReproError):
            Query(positive_ids=())

    def test_duplicate_positives_rejected(self):
        with pytest.raises(QueryError, match="duplicates"):
            Query(positive_ids=("a", "a"))

    def test_duplicate_negatives_rejected(self):
        with pytest.raises(QueryError, match="duplicates"):
            Query(positive_ids=("a",), negative_ids=("b", "b"))

    def test_overlap_rejected(self):
        with pytest.raises(QueryError, match="both positive and negative"):
            Query(positive_ids=("a", "b"), negative_ids=("b",))

    def test_empty_id_rejected(self):
        with pytest.raises(QueryError):
            Query(positive_ids=("a", ""))

    def test_bad_top_k_rejected(self):
        with pytest.raises(QueryError, match="top_k"):
            Query(positive_ids=("a",), top_k=0)

    def test_category_filter_accepted(self):
        query = Query(positive_ids=("a",), category_filter="waterfall")
        assert query.category_filter == "waterfall"
        assert Query(positive_ids=("a",)).category_filter is None

    def test_empty_category_filter_rejected(self):
        with pytest.raises(QueryError, match="category_filter"):
            Query(positive_ids=("a",), category_filter="")

    def test_non_string_category_filter_rejected(self):
        with pytest.raises(QueryError, match="category_filter"):
            Query(positive_ids=("a",), category_filter=7)

    def test_empty_learner_rejected(self):
        with pytest.raises(QueryError, match="learner"):
            Query(positive_ids=("a",), learner="")


class TestQueryImmutability:
    def test_frozen(self):
        query = Query(positive_ids=("a",))
        with pytest.raises(dataclasses.FrozenInstanceError):
            query.learner = "emdd"

    def test_params_read_only(self):
        query = Query(positive_ids=("a",), params={"seed": 3})
        assert query.params["seed"] == 3
        with pytest.raises(TypeError):
            query.params["seed"] = 4

    def test_params_copied_from_caller(self):
        params = {"seed": 3}
        query = Query(positive_ids=("a",), params=params)
        params["seed"] = 99
        assert query.params["seed"] == 3

    def test_example_ids_property(self):
        query = Query(positive_ids=("a", "b"), negative_ids=("c",))
        assert query.example_ids == ("a", "b", "c")

    def test_equality_by_value(self):
        a = Query(positive_ids=("a",), params={"seed": 1})
        b = Query(positive_ids=("a",), params={"seed": 1})
        assert a == b

    def test_hashable_for_queueing(self):
        a = Query(positive_ids=("a",), params={"seed": 1})
        b = Query(positive_ids=("a",), params={"seed": 1})
        assert hash(a) == hash(b)
        assert len({a, b}) == 1
