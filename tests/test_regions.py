"""Unit tests for region families (Section 3.2, Figure 3-5)."""

import numpy as np
import pytest

from repro.errors import RegionError
from repro.imaging.regions import (
    INSTANCES_PER_REGION,
    Region,
    RegionFamily,
    available_families,
    default_region_family,
    family_for_instance_count,
    region_family,
)


class TestRegion:
    def test_valid_region(self):
        region = Region(0.1, 0.2, 0.5, 0.5, name="r")
        assert region.area == pytest.approx(0.25)

    def test_full_frame(self):
        region = Region(0.0, 0.0, 1.0, 1.0)
        assert region.area == pytest.approx(1.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(top=-0.1, left=0.0, height=0.5, width=0.5),
            dict(top=0.0, left=1.0, height=0.5, width=0.5),
            dict(top=0.0, left=0.0, height=0.0, width=0.5),
            dict(top=0.0, left=0.0, height=0.5, width=1.5),
            dict(top=0.6, left=0.0, height=0.5, width=0.5),
            dict(top=0.0, left=0.7, height=0.5, width=0.5),
        ],
    )
    def test_invalid_geometry_raises(self, kwargs):
        with pytest.raises(RegionError):
            Region(**kwargs)

    def test_pixel_box_full(self):
        region = Region(0.0, 0.0, 1.0, 1.0)
        assert region.pixel_box(48, 64) == (0, 0, 48, 64)

    def test_pixel_box_quadrant(self):
        region = Region(0.5, 0.5, 0.5, 0.5)
        top, left, height, width = region.pixel_box(100, 100)
        assert (top, left) == (50, 50)
        assert (height, width) == (50, 50)

    def test_pixel_box_always_in_bounds(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            top = rng.uniform(0, 0.9)
            left = rng.uniform(0, 0.9)
            region = Region(
                top, left, rng.uniform(0.05, 1.0 - top), rng.uniform(0.05, 1.0 - left)
            )
            rows, cols = int(rng.integers(10, 200)), int(rng.integers(10, 200))
            t, l, h, w = region.pixel_box(rows, cols)
            assert 0 <= t and t + h <= rows
            assert 0 <= l and l + w <= cols
            assert h >= 2 and w >= 2

    def test_extract_shape(self):
        plane = np.random.default_rng(1).uniform(size=(60, 80))
        region = Region(0.25, 0.25, 0.5, 0.5)
        crop = region.extract(plane)
        assert crop.shape == (30, 40)

    def test_extract_content(self):
        plane = np.arange(100, dtype=float).reshape(10, 10) / 100
        region = Region(0.0, 0.0, 0.5, 0.5)
        np.testing.assert_allclose(region.extract(plane), plane[:5, :5])

    def test_extract_rejects_3d(self):
        with pytest.raises(RegionError):
            Region(0, 0, 1, 1).extract(np.zeros((5, 5, 3)))


class TestRegionFamily:
    def test_default_has_20_regions(self):
        family = default_region_family()
        assert len(family) == 20
        assert family.max_instances == 40

    def test_small_family(self):
        family = region_family("small9")
        assert len(family) == 9
        assert family.max_instances == 18

    def test_large_family(self):
        family = region_family("large42")
        assert len(family) == 42
        assert family.max_instances == 84

    def test_instance_count_aliases(self):
        assert len(family_for_instance_count(18)) == 9
        assert len(family_for_instance_count(40)) == 20
        assert len(family_for_instance_count(84)) == 42

    def test_unknown_instance_count_raises(self):
        with pytest.raises(RegionError):
            family_for_instance_count(50)

    def test_unknown_family_raises(self):
        with pytest.raises(RegionError):
            region_family("nope")

    def test_available_families(self):
        assert set(available_families()) == {"small9", "default20", "large42"}

    def test_first_region_is_full_frame(self):
        # The feature pipeline's keep_full_frame relies on this ordering.
        for name in available_families():
            family = region_family(name)
            first = family[0]
            assert first.area == pytest.approx(1.0)
            assert first.name == "full"

    def test_region_names_unique(self):
        for name in available_families():
            names = [region.name for region in region_family(name)]
            assert len(names) == len(set(names))

    def test_families_nest(self):
        # small9 regions appear in default20 which appear in large42.
        small = {r.name for r in region_family("small9")}
        default = {r.name for r in region_family("default20")}
        large = {r.name for r in region_family("large42")}
        assert small <= default <= large

    def test_all_regions_valid_on_small_image(self):
        plane = np.random.default_rng(2).uniform(size=(32, 32))
        for region in region_family("large42"):
            crop = region.extract(plane)
            assert crop.shape[0] >= 2 and crop.shape[1] >= 2

    def test_deterministic_order(self):
        first = [r.name for r in region_family("default20")]
        second = [r.name for r in region_family("default20")]
        assert first == second

    def test_iteration_and_indexing_agree(self):
        family = default_region_family()
        assert list(family)[3] == family[3]

    def test_empty_family_rejected(self):
        with pytest.raises(RegionError):
            RegionFamily("empty", [])

    def test_instances_per_region_constant(self):
        assert INSTANCES_PER_REGION == 2

    def test_coverage_of_frame(self):
        # Union of the default regions covers the whole frame.
        covered = np.zeros((50, 50), dtype=bool)
        for region in default_region_family():
            t, l, h, w = region.pixel_box(50, 50)
            covered[t : t + h, l : l + w] = True
        assert covered.all()
