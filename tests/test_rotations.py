"""Unit tests for rotation-augmented feature extraction (Ch. 5 future work)."""

import numpy as np
import pytest

from repro.errors import FeatureError
from repro.imaging.features import FeatureConfig
from repro.imaging.image import GrayImage
from repro.imaging.regions import region_family
from repro.imaging.rotations import (
    ALLOWED_ANGLES,
    RotationAugmentedExtractor,
    RotationConfig,
)


def textured_image(seed: int = 0, size: int = 48) -> GrayImage:
    plane = np.random.default_rng(seed).uniform(0.1, 0.9, size=(size, size))
    return GrayImage(pixels=plane, image_id=f"rot-{seed}")


def small_rotation_config(angles=(90, 180, 270), mirrors=True) -> RotationConfig:
    return RotationConfig(
        base=FeatureConfig(
            resolution=6,
            region_family=region_family("small9"),
            include_mirrors=mirrors,
        ),
        angles=angles,
    )


class TestRotationConfig:
    def test_max_instances(self):
        config = small_rotation_config()
        # 9 regions x 2 (mirror) x (1 + 3 rotations) = 72.
        assert config.max_instances == 72

    def test_no_mirror_counts(self):
        config = small_rotation_config(mirrors=False)
        assert config.max_instances == 9 * 4

    def test_invalid_angle_rejected(self):
        with pytest.raises(FeatureError):
            small_rotation_config(angles=(45,))

    def test_duplicate_angles_rejected(self):
        with pytest.raises(FeatureError):
            small_rotation_config(angles=(90, 90))

    def test_allowed_angles_constant(self):
        assert ALLOWED_ANGLES == (90, 180, 270)


class TestRotationAugmentedExtractor:
    def test_instance_count(self):
        extractor = RotationAugmentedExtractor(small_rotation_config())
        features = extractor.extract(textured_image())
        assert features.n_instances == 72
        assert features.n_dims == 36

    def test_sources_labelled_with_angle(self):
        extractor = RotationAugmentedExtractor(small_rotation_config(angles=(180,)))
        features = extractor.extract(textured_image(1))
        names = {source.region_name for source in features.sources}
        assert any(name.endswith("@rot180") for name in names)
        assert any(name.endswith("@0") for name in names)

    def test_rot180_is_double_flip(self):
        # rot180 of the base instance equals flipping both axes.
        extractor = RotationAugmentedExtractor(
            small_rotation_config(angles=(180,), mirrors=False)
        )
        features = extractor.extract(textured_image(2))
        base = features.vectors[0].reshape(6, 6)
        rotated = features.vectors[1].reshape(6, 6)
        np.testing.assert_allclose(rotated, base[::-1, ::-1], atol=1e-10)

    def test_rotation_invariant_retrieval_property(self):
        # A bag with rotations matches a rotated probe better than a bag
        # without them: min distance over instances drops.
        plane = np.random.default_rng(3).uniform(0.1, 0.9, size=(48, 48))
        image = GrayImage(pixels=plane)
        rotated_image = GrayImage(pixels=np.rot90(plane).copy())

        plain_cfg = FeatureConfig(
            resolution=6, region_family=region_family("small9")
        )
        from repro.imaging.features import FeatureExtractor

        probe = FeatureExtractor(plain_cfg).extract(rotated_image).vectors[0]

        plain_bag = FeatureExtractor(plain_cfg).extract(image).vectors
        augmented_bag = RotationAugmentedExtractor(
            small_rotation_config()
        ).extract(image).vectors

        def min_distance(bag: np.ndarray) -> float:
            return float((((bag - probe) ** 2).sum(axis=1)).min())

        assert min_distance(augmented_bag) < min_distance(plain_bag) - 1e-6

    def test_constant_image_rejected(self):
        extractor = RotationAugmentedExtractor(small_rotation_config())
        with pytest.raises(FeatureError):
            extractor.extract(GrayImage(pixels=np.full((32, 32), 0.5)))

    def test_variance_filter_still_applies(self):
        plane = np.full((48, 48), 0.5)
        plane[:24, :24] = np.random.default_rng(4).uniform(0.1, 0.9, (24, 24))
        extractor = RotationAugmentedExtractor(small_rotation_config())
        features = extractor.extract(GrayImage(pixels=plane))
        assert features.dropped_regions
