"""SessionStore tests: lifecycle, TTL/LRU bounds, and the multi-tenant
serving guarantees (no cross-contamination, shared cache hits)."""

from __future__ import annotations

import threading

import pytest

from repro.api.service import RetrievalService
from repro.errors import DatabaseError, SessionError, TrainingError
from repro.serve.sessions import SessionStore

_PARAMS = {"scheme": "identical", "max_iterations": 25, "seed": 5}


class _FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture()
def service(tiny_scene_db) -> RetrievalService:
    return RetrievalService(tiny_scene_db)


@pytest.fixture()
def clock() -> _FakeClock:
    return _FakeClock()


class TestLifecycle:
    def test_create_and_get(self, service):
        store = SessionStore(service)
        token = store.create(learner="dd", params=dict(_PARAMS))
        session = store.get(token)
        assert session.learner == "dd"
        assert session.service is service
        assert len(store) == 1

    def test_tokens_are_unique_and_opaque(self, service):
        store = SessionStore(service)
        tokens = {store.create() for _ in range(10)}
        assert len(tokens) == 10
        assert all(len(token) == 32 for token in tokens)

    def test_unknown_token(self, service):
        store = SessionStore(service)
        with pytest.raises(SessionError, match="unknown or expired"):
            store.get("no-such-token")

    def test_drop(self, service):
        store = SessionStore(service)
        token = store.create()
        assert store.drop(token) is True
        assert store.drop(token) is False
        with pytest.raises(SessionError):
            store.get(token)

    def test_invalid_bounds(self, service):
        with pytest.raises(SessionError, match="ttl_seconds"):
            SessionStore(service, ttl_seconds=0.0)
        with pytest.raises(SessionError, match="max_sessions"):
            SessionStore(service, max_sessions=0)


class TestExpiry:
    def test_ttl_expires_idle_sessions(self, service, clock):
        store = SessionStore(service, ttl_seconds=100.0, clock=clock)
        token = store.create()
        clock.advance(99.0)
        store.get(token)  # touch refreshes the deadline
        clock.advance(99.0)
        store.get(token)  # still alive thanks to the refresh
        clock.advance(101.0)
        with pytest.raises(SessionError):
            store.get(token)

    def test_expire_sweeps_and_counts(self, service, clock):
        store = SessionStore(service, ttl_seconds=10.0, clock=clock)
        tokens = [store.create() for _ in range(3)]
        clock.advance(11.0)
        fresh = store.create()
        assert store.expire() == 0  # create already swept the stale three
        assert len(store) == 1
        stats = store.stats()
        assert stats["expired"] == 3 and stats["created"] == 4
        assert store.get(fresh) is not None
        assert all(t != fresh for t in tokens)

    def test_mid_round_sessions_are_never_evicted(self, service, clock):
        """A session holding its round lock is skipped by LRU eviction."""
        store = SessionStore(service, max_sessions=2, clock=clock)
        busy = store.create()
        idle = store.create()
        entry_lock = store._entries[busy].lock
        entry_lock.acquire()  # simulate a round in flight
        try:
            third = store.create()  # must evict `idle`, not the busy LRU
            assert store.get(busy) is not None
            assert store.get(third) is not None
            with pytest.raises(SessionError):
                store.get(idle)
        finally:
            entry_lock.release()

    def test_store_full_of_active_sessions_refuses_creation(self, service, clock):
        store = SessionStore(service, max_sessions=1, clock=clock)
        busy = store.create()
        entry_lock = store._entries[busy].lock
        entry_lock.acquire()
        try:
            with pytest.raises(SessionError, match="mid-round"):
                store.create()
        finally:
            entry_lock.release()
        assert store.create()  # idle again: eviction works

    def test_mid_round_sessions_survive_ttl_expiry(self, service, clock):
        store = SessionStore(service, ttl_seconds=10.0, clock=clock)
        busy = store.create()
        entry_lock = store._entries[busy].lock
        entry_lock.acquire()
        try:
            clock.advance(11.0)
            assert store.expire() == 0
            assert store.get(busy) is not None  # touch refreshed the deadline
        finally:
            entry_lock.release()

    def test_lru_eviction_beyond_capacity(self, service, clock):
        store = SessionStore(service, max_sessions=2, clock=clock)
        first = store.create()
        second = store.create()
        store.get(first)  # first is now most recently used
        third = store.create()  # evicts second (the LRU entry)
        assert len(store) == 2
        store.get(first)
        store.get(third)
        with pytest.raises(SessionError):
            store.get(second)
        assert store.stats()["evicted"] == 1


class TestFeedbackRound:
    def test_round_trains_and_ranks(self, service, tiny_scene_db):
        store = SessionStore(service)
        ids = tiny_scene_db.ids_in_category("waterfall")
        negs = tiny_scene_db.ids_in_category("field")
        token = store.create(learner="dd", params=dict(_PARAMS))
        result = store.feedback_round(
            token,
            add_positive_ids=ids[:2],
            add_negative_ids=negs[:2],
            top_k=5,
        )
        assert result.token == token
        assert result.positive_ids == ids[:2]
        assert result.negative_ids == negs[:2]
        assert result.ranking is not None and len(result.ranking) == 5
        # Examples are excluded from the ranking.
        assert not set(result.ranking.image_ids) & (set(ids[:2]) | set(negs[:2]))
        # The concept is captured with the ranking, under the session lock.
        assert result.concept is not None and result.concept.n_dims > 0

    def test_round_without_rank_only_edits(self, service, tiny_scene_db):
        store = SessionStore(service)
        ids = tiny_scene_db.ids_in_category("waterfall")
        token = store.create(learner="dd", params=dict(_PARAMS))
        result = store.feedback_round(token, add_positive_ids=ids[:1], rank=False)
        assert result.ranking is None
        assert result.positive_ids == ids[:1]

    def test_false_positive_promotion(self, service, tiny_scene_db):
        store = SessionStore(service)
        ids = tiny_scene_db.ids_in_category("waterfall")
        negs = tiny_scene_db.ids_in_category("field")
        token = store.create(learner="dd", params=dict(_PARAMS))
        round1 = store.feedback_round(
            token, add_positive_ids=ids[:2], add_negative_ids=negs[:1]
        )
        bad = [
            entry.image_id
            for entry in round1.ranking
            if entry.category != "waterfall"
        ][:2]
        round2 = store.feedback_round(token, false_positive_ids=bad)
        assert set(bad) <= set(round2.negative_ids)

    def test_bad_edits_raise_and_rank_needs_positives(self, service):
        store = SessionStore(service)
        token = store.create(learner="dd", params=dict(_PARAMS))
        with pytest.raises(DatabaseError):
            store.feedback_round(token, add_positive_ids=["nope"], rank=False)
        with pytest.raises(TrainingError, match="positive example"):
            store.feedback_round(token)

    def test_edits_are_atomic_across_all_lists(self, service, tiny_scene_db):
        """A rejected round applies nothing, so a corrected retry succeeds."""
        store = SessionStore(service)
        ids = tiny_scene_db.ids_in_category("waterfall")
        negs = tiny_scene_db.ids_in_category("field")
        token = store.create(learner="dd", params=dict(_PARAMS))
        with pytest.raises(DatabaseError, match="unknown image id"):
            store.feedback_round(
                token,
                add_positive_ids=[ids[0], "typo-id"],
                add_negative_ids=negs[:1],
                rank=False,
            )
        session = store.get(token)
        assert session.positive_ids == () and session.negative_ids == ()
        # The corrected retry (including the previously good ids) works.
        result = store.feedback_round(
            token, add_positive_ids=ids[:2], add_negative_ids=negs[:1], rank=False
        )
        assert result.positive_ids == ids[:2]

    def test_duplicate_across_edit_lists_rejected(self, service, tiny_scene_db):
        store = SessionStore(service)
        ids = tiny_scene_db.ids_in_category("waterfall")
        token = store.create(learner="dd", params=dict(_PARAMS))
        with pytest.raises(DatabaseError, match="duplicate image id"):
            store.feedback_round(
                token,
                add_positive_ids=ids[:1],
                add_negative_ids=ids[:1],
                rank=False,
            )
        assert store.get(token).positive_ids == ()


class TestMultiTenant:
    def test_concurrent_tenants_never_cross_contaminate(self, service, tiny_scene_db):
        """N threads on distinct tokens: examples stay per-tenant."""
        store = SessionStore(service)
        categories = tiny_scene_db.categories()
        n_tenants = 8
        plans = []
        for index in range(n_tenants):
            category = categories[index % len(categories)]
            other = categories[(index + 1) % len(categories)]
            plans.append(
                (
                    store.create(learner="dd", params=dict(_PARAMS, seed=index)),
                    tiny_scene_db.ids_in_category(category)[:2],
                    tiny_scene_db.ids_in_category(other)[:2],
                )
            )
        results: dict[str, object] = {}
        errors: list[BaseException] = []
        barrier = threading.Barrier(n_tenants)

        def tenant(token, positives, negatives):
            try:
                barrier.wait(timeout=30)
                store.feedback_round(
                    token, add_positive_ids=positives, rank=False
                )
                store.feedback_round(
                    token, add_negative_ids=negatives, rank=False
                )
                results[token] = store.feedback_round(token, top_k=5)
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=tenant, args=plan) for plan in plans
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors, errors
        assert len(results) == n_tenants
        for token, positives, negatives in plans:
            outcome = results[token]
            assert outcome.positive_ids == positives
            assert outcome.negative_ids == negatives
            assert outcome.ranking is not None
            # A tenant's own examples never leak into its ranking.
            assert not set(outcome.ranking.image_ids) & (
                set(positives) | set(negatives)
            )

    def test_cache_hits_are_shared_across_tenants(self, service, tiny_scene_db):
        """Two tenants with identical examples share one training run."""
        store = SessionStore(service)
        ids = tiny_scene_db.ids_in_category("waterfall")[:2]
        negs = tiny_scene_db.ids_in_category("field")[:2]
        first = store.create(learner="dd", params=dict(_PARAMS))
        second = store.create(learner="dd", params=dict(_PARAMS))
        before = service.cache_stats
        round1 = store.feedback_round(
            first, add_positive_ids=ids, add_negative_ids=negs, top_k=5
        )
        round2 = store.feedback_round(
            second, add_positive_ids=ids, add_negative_ids=negs, top_k=5
        )
        after = service.cache_stats
        assert after.misses == before.misses + 1  # one tenant trained...
        assert after.hits == before.hits + 1  # ...the other reused it
        assert round1.ranking.image_ids == round2.ranking.image_ids

    def test_same_token_rounds_serialise(self, service, tiny_scene_db):
        """Concurrent rounds on one token interleave safely (no lost edits)."""
        store = SessionStore(service)
        token = store.create(learner="dd", params=dict(_PARAMS))
        all_ids = tiny_scene_db.image_ids[:8]
        errors: list[BaseException] = []

        def add(image_id):
            try:
                store.feedback_round(token, add_negative_ids=[image_id], rank=False)
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=add, args=(i,)) for i in all_ids]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, errors
        assert set(store.get(token).negative_ids) == set(all_ids)
