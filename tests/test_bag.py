"""Unit tests for the multiple-instance data model (repro.bags.bag)."""

import numpy as np
import pytest

from repro.bags.bag import Bag, BagSet, Instance
from repro.errors import BagError


class TestInstance:
    def test_basic(self):
        instance = Instance(vector=np.array([1.0, 2.0]), source="full")
        assert instance.n_dims == 2
        assert instance.source == "full"

    def test_flattens_input(self):
        instance = Instance(vector=np.zeros((2, 3)))
        assert instance.n_dims == 6

    def test_rejects_empty(self):
        with pytest.raises(BagError):
            Instance(vector=np.array([]))

    def test_rejects_nan(self):
        with pytest.raises(BagError):
            Instance(vector=np.array([1.0, np.nan]))

    def test_rejects_inf(self):
        with pytest.raises(BagError):
            Instance(vector=np.array([np.inf, 1.0]))


class TestBag:
    def test_basic(self):
        bag = Bag(instances=np.zeros((3, 4)), label=True, bag_id="b")
        assert bag.n_instances == 3
        assert bag.n_dims == 4
        assert bag.label is True
        assert len(bag) == 3

    def test_1d_promoted_to_single_instance(self):
        bag = Bag(instances=np.array([1.0, 2.0, 3.0]), label=False)
        assert bag.n_instances == 1
        assert bag.n_dims == 3

    def test_rejects_empty_matrix(self):
        with pytest.raises(BagError):
            Bag(instances=np.zeros((0, 4)), label=True)

    def test_rejects_zero_dims(self):
        with pytest.raises(BagError):
            Bag(instances=np.zeros((3, 0)), label=True)

    def test_rejects_nan(self):
        data = np.zeros((2, 3))
        data[1, 1] = np.nan
        with pytest.raises(BagError):
            Bag(instances=data, label=True)

    def test_rejects_3d(self):
        with pytest.raises(BagError):
            Bag(instances=np.zeros((2, 3, 4)), label=True)

    def test_sources_length_checked(self):
        with pytest.raises(BagError):
            Bag(instances=np.zeros((3, 2)), label=True, sources=("a", "b"))

    def test_from_instances(self):
        instances = [
            Instance(vector=np.array([1.0, 2.0]), source="a"),
            Instance(vector=np.array([3.0, 4.0]), source="b"),
        ]
        bag = Bag.from_instances(instances, label=True, bag_id="x")
        assert bag.n_instances == 2
        assert bag.sources == ("a", "b")
        np.testing.assert_allclose(bag.instances[1], [3.0, 4.0])

    def test_from_instances_rejects_mixed_dims(self):
        instances = [
            Instance(vector=np.array([1.0, 2.0])),
            Instance(vector=np.array([3.0])),
        ]
        with pytest.raises(BagError):
            Bag.from_instances(instances, label=True)

    def test_from_instances_rejects_empty(self):
        with pytest.raises(BagError):
            Bag.from_instances([], label=True)

    def test_instance_accessor(self):
        bag = Bag(
            instances=np.arange(6, dtype=float).reshape(2, 3),
            label=True,
            sources=("s0", "s1"),
        )
        instance = bag.instance(1)
        assert instance.source == "s1"
        np.testing.assert_allclose(instance.vector, [3.0, 4.0, 5.0])

    def test_relabeled(self):
        bag = Bag(instances=np.zeros((2, 2)), label=True, bag_id="b")
        flipped = bag.relabeled(False)
        assert flipped.label is False
        assert flipped.bag_id == "b"
        np.testing.assert_array_equal(flipped.instances, bag.instances)

    def test_iteration_yields_rows(self):
        data = np.arange(6, dtype=float).reshape(3, 2)
        bag = Bag(instances=data, label=True)
        rows = list(bag)
        assert len(rows) == 3
        np.testing.assert_allclose(rows[2], data[2])


class TestBagSet:
    def make_set(self) -> BagSet:
        bag_set = BagSet()
        bag_set.add(Bag(instances=np.zeros((2, 3)), label=True, bag_id="p0"))
        bag_set.add(Bag(instances=np.ones((3, 3)), label=True, bag_id="p1"))
        bag_set.add(Bag(instances=np.full((4, 3), 2.0), label=False, bag_id="n0"))
        return bag_set

    def test_counts(self):
        bag_set = self.make_set()
        assert len(bag_set) == 3
        assert bag_set.n_positive == 2
        assert bag_set.n_negative == 1
        assert bag_set.n_dims == 3

    def test_positive_negative_views(self):
        bag_set = self.make_set()
        assert [b.bag_id for b in bag_set.positive_bags] == ["p0", "p1"]
        assert [b.bag_id for b in bag_set.negative_bags] == ["n0"]

    def test_dimension_mismatch_rejected(self):
        bag_set = self.make_set()
        with pytest.raises(BagError):
            bag_set.add(Bag(instances=np.zeros((2, 4)), label=True, bag_id="bad"))

    def test_duplicate_id_rejected(self):
        bag_set = self.make_set()
        with pytest.raises(BagError):
            bag_set.add(Bag(instances=np.zeros((2, 3)), label=False, bag_id="p0"))

    def test_anonymous_bags_allowed_duplicated(self):
        bag_set = BagSet()
        bag_set.add(Bag(instances=np.zeros((1, 2)), label=True))
        bag_set.add(Bag(instances=np.zeros((1, 2)), label=True))
        assert len(bag_set) == 2

    def test_empty_set_n_dims_raises(self):
        with pytest.raises(BagError):
            BagSet().n_dims

    def test_validate_for_training(self):
        bag_set = BagSet()
        bag_set.add(Bag(instances=np.zeros((2, 3)), label=False, bag_id="n"))
        with pytest.raises(BagError):
            bag_set.validate_for_training()

    def test_validate_passes_with_positive(self):
        self.make_set().validate_for_training()

    def test_stacked_positive(self):
        bag_set = self.make_set()
        matrix, bounds = bag_set.stacked(label=True)
        assert matrix.shape == (5, 3)
        np.testing.assert_array_equal(bounds, [0, 2, 5])
        np.testing.assert_allclose(matrix[:2], 0.0)
        np.testing.assert_allclose(matrix[2:], 1.0)

    def test_stacked_negative(self):
        matrix, bounds = self.make_set().stacked(label=False)
        assert matrix.shape == (4, 3)
        np.testing.assert_array_equal(bounds, [0, 4])

    def test_stacked_empty_side(self):
        bag_set = BagSet([Bag(instances=np.zeros((2, 3)), label=True, bag_id="p")])
        matrix, bounds = bag_set.stacked(label=False)
        assert matrix.shape == (0, 3)
        np.testing.assert_array_equal(bounds, [0])

    def test_contains_id(self):
        bag_set = self.make_set()
        assert bag_set.contains_id("p0")
        assert not bag_set.contains_id("zzz")

    def test_copy_is_independent(self):
        bag_set = self.make_set()
        clone = bag_set.copy()
        clone.add(Bag(instances=np.zeros((1, 3)), label=False, bag_id="extra"))
        assert len(bag_set) == 3
        assert len(clone) == 4

    def test_extend(self):
        bag_set = BagSet()
        bag_set.extend(
            [
                Bag(instances=np.zeros((1, 2)), label=True, bag_id="a"),
                Bag(instances=np.zeros((1, 2)), label=False, bag_id="b"),
            ]
        )
        assert len(bag_set) == 2

    def test_repr(self):
        assert "2 positive" in repr(self.make_set())
