"""Unit tests for plain and weighted correlation (Sections 3.1.1, 3.3)."""

import numpy as np
import pytest

from repro.errors import FeatureError
from repro.imaging.correlation import (
    correlation_coefficient,
    correlation_matrix,
    image_correlation,
    weighted_correlation,
)


class TestCorrelationCoefficient:
    def test_self_correlation_is_one(self):
        signal = np.random.default_rng(0).normal(size=50)
        assert correlation_coefficient(signal, signal) == pytest.approx(1.0)

    def test_affine_image_is_one(self):
        signal = np.random.default_rng(1).normal(size=50)
        assert correlation_coefficient(signal, 3 * signal + 2) == pytest.approx(1.0)

    def test_negated_is_minus_one(self):
        signal = np.random.default_rng(2).normal(size=50)
        assert correlation_coefficient(signal, -signal) == pytest.approx(-1.0)

    def test_symmetry(self):
        rng = np.random.default_rng(3)
        a, b = rng.normal(size=30), rng.normal(size=30)
        assert correlation_coefficient(a, b) == pytest.approx(correlation_coefficient(b, a))

    def test_bounded(self):
        rng = np.random.default_rng(4)
        for _ in range(20):
            a, b = rng.normal(size=15), rng.normal(size=15)
            assert -1.0 <= correlation_coefficient(a, b) <= 1.0

    def test_matches_numpy_corrcoef(self):
        rng = np.random.default_rng(5)
        a, b = rng.normal(size=40), rng.normal(size=40)
        expected = np.corrcoef(a, b)[0, 1]
        assert correlation_coefficient(a, b) == pytest.approx(expected)

    def test_2d_inputs_flattened(self):
        rng = np.random.default_rng(6)
        a = rng.normal(size=(5, 8))
        b = rng.normal(size=(5, 8))
        assert correlation_coefficient(a, b) == pytest.approx(
            correlation_coefficient(a.reshape(-1), b.reshape(-1))
        )

    def test_shape_mismatch_raises(self):
        with pytest.raises(FeatureError):
            correlation_coefficient(np.zeros(5), np.zeros(6))

    def test_constant_signal_raises(self):
        with pytest.raises(FeatureError):
            correlation_coefficient(np.full(10, 2.0), np.arange(10.0))

    def test_too_short_raises(self):
        with pytest.raises(FeatureError):
            correlation_coefficient(np.array([1.0]), np.array([2.0]))

    def test_invariant_to_shift_and_scale(self):
        rng = np.random.default_rng(7)
        a, b = rng.normal(size=25), rng.normal(size=25)
        base = correlation_coefficient(a, b)
        assert correlation_coefficient(5 * a - 3, b) == pytest.approx(base)
        assert correlation_coefficient(a, 0.1 * b + 9) == pytest.approx(base)


class TestWeightedCorrelation:
    def test_unit_weights_match_plain(self):
        rng = np.random.default_rng(8)
        a, b = rng.normal(size=30), rng.normal(size=30)
        weighted = weighted_correlation(a, b, np.ones(30))
        assert weighted == pytest.approx(correlation_coefficient(a, b))

    def test_scaling_weights_does_not_change_value(self):
        rng = np.random.default_rng(9)
        a, b = rng.normal(size=30), rng.normal(size=30)
        w = rng.uniform(0.1, 2.0, size=30)
        assert weighted_correlation(a, b, w) == pytest.approx(
            weighted_correlation(a, b, 7.5 * w)
        )

    def test_self_correlation_is_one_for_any_weights(self):
        rng = np.random.default_rng(10)
        a = rng.normal(size=30)
        w = rng.uniform(0.1, 2.0, size=30)
        assert weighted_correlation(a, a, w) == pytest.approx(1.0)

    def test_zero_weight_dimensions_ignored(self):
        # The paper's definition keeps *unweighted* means, so masked dims
        # still shift the mean; keep both vectors' means fixed while
        # perturbing masked dims to verify the correlation is untouched.
        rng = np.random.default_rng(11)
        a = rng.normal(size=20)
        b = rng.normal(size=20)
        w = np.ones(20)
        w[10:12] = 0.0
        before = weighted_correlation(a, b, w)
        b2 = b.copy()
        b2[10] += 0.7  # mean-preserving perturbation inside the masked dims
        b2[11] -= 0.7
        assert weighted_correlation(a, b2, w) == pytest.approx(before)

    def test_bounded(self):
        rng = np.random.default_rng(12)
        for _ in range(10):
            a, b = rng.normal(size=15), rng.normal(size=15)
            w = rng.uniform(0, 3, size=15)
            w[0] = 1.0  # keep at least one positive weight
            assert -1.0 <= weighted_correlation(a, b, w) <= 1.0

    def test_negative_weights_raise(self):
        with pytest.raises(FeatureError):
            weighted_correlation(np.arange(5.0), np.arange(5.0), np.array([1, 1, -1, 1, 1.0]))

    def test_all_zero_weights_raise(self):
        with pytest.raises(FeatureError):
            weighted_correlation(np.arange(5.0), np.arange(5.0), np.zeros(5))

    def test_weight_size_mismatch_raises(self):
        with pytest.raises(FeatureError):
            weighted_correlation(np.arange(5.0), np.arange(5.0), np.ones(4))

    def test_weighted_constant_raises(self):
        # Weighted variance is sum w_k (a_k - mean)^2 with the unweighted
        # mean, so it vanishes when every *weighted* entry equals the mean.
        a = np.array([3.0, 3.0, 0.0, 6.0])  # mean 3; weighted dims sit on it
        b = np.arange(4.0)
        w = np.array([1.0, 1.0, 0.0, 0.0])
        with pytest.raises(FeatureError):
            weighted_correlation(a, b, w)


class TestImageCorrelation:
    def test_equal_shapes_no_resolution(self):
        rng = np.random.default_rng(13)
        a = rng.uniform(size=(20, 20))
        assert image_correlation(a, a) == pytest.approx(1.0)

    def test_resolution_allows_different_sizes(self):
        rng = np.random.default_rng(14)
        a = rng.uniform(size=(40, 40))
        b = rng.uniform(size=(60, 80))
        value = image_correlation(a, b, resolution=8)
        assert -1.0 <= value <= 1.0

    def test_different_sizes_without_resolution_raise(self):
        with pytest.raises(FeatureError):
            image_correlation(np.random.rand(10, 10), np.random.rand(12, 12))


class TestCorrelationMatrix:
    def test_diagonal_is_one(self):
        data = np.random.default_rng(15).normal(size=(6, 12))
        matrix = correlation_matrix(data)
        np.testing.assert_allclose(np.diag(matrix), 1.0)

    def test_symmetric(self):
        data = np.random.default_rng(16).normal(size=(5, 9))
        matrix = correlation_matrix(data)
        np.testing.assert_allclose(matrix, matrix.T)

    def test_matches_pairwise(self):
        data = np.random.default_rng(17).normal(size=(4, 20))
        matrix = correlation_matrix(data)
        expected = correlation_coefficient(data[1], data[3])
        assert matrix[1, 3] == pytest.approx(expected)

    def test_rejects_1d(self):
        with pytest.raises(FeatureError):
            correlation_matrix(np.zeros(5))

    def test_rejects_constant_row(self):
        data = np.random.default_rng(18).normal(size=(3, 10))
        data[1] = 4.2
        with pytest.raises(FeatureError):
            correlation_matrix(data)
