"""Unit tests for retrieval metrics (repro.eval.metrics)."""

import numpy as np
import pytest

from repro.errors import EvaluationError
from repro.eval.metrics import (
    average_precision,
    precision_at_k,
    precision_in_recall_band,
    precision_points,
    random_baseline_precision,
    recall_at_k,
    recall_points,
)

PERFECT = np.array([True] * 5 + [False] * 5)
WORST = np.array([False] * 5 + [True] * 5)
ALTERNATING = np.array([True, False] * 5)


class TestPrecisionPoints:
    def test_perfect_ranking(self):
        points = precision_points(PERFECT)
        np.testing.assert_allclose(points[:5], 1.0)
        assert points[-1] == pytest.approx(0.5)

    def test_values_in_unit_interval(self):
        rng = np.random.default_rng(0)
        for _ in range(10):
            mask = rng.random(20) < 0.3
            if not mask.any():
                mask[0] = True
            points = precision_points(mask)
            assert np.all((points >= 0) & (points <= 1))

    def test_manual_example(self):
        points = precision_points(np.array([True, False, True]))
        np.testing.assert_allclose(points, [1.0, 0.5, 2 / 3])

    def test_integer_relevance_accepted(self):
        np.testing.assert_allclose(
            precision_points(np.array([1, 0, 1])), [1.0, 0.5, 2 / 3]
        )

    def test_invalid_values_rejected(self):
        with pytest.raises(EvaluationError):
            precision_points(np.array([0, 2, 1]))

    def test_empty_rejected(self):
        with pytest.raises(EvaluationError):
            precision_points(np.array([], dtype=bool))

    def test_2d_rejected(self):
        with pytest.raises(EvaluationError):
            precision_points(np.zeros((2, 2), dtype=bool))


class TestRecallPoints:
    def test_monotone_nondecreasing(self):
        points = recall_points(ALTERNATING)
        assert np.all(np.diff(points) >= 0)

    def test_reaches_one_when_all_found(self):
        assert recall_points(PERFECT)[-1] == pytest.approx(1.0)

    def test_external_total(self):
        points = recall_points(np.array([True, True]), n_relevant=4)
        np.testing.assert_allclose(points, [0.25, 0.5])

    def test_total_smaller_than_hits_rejected(self):
        with pytest.raises(EvaluationError):
            recall_points(np.array([True, True]), n_relevant=1)

    def test_zero_relevant(self):
        points = recall_points(np.array([False, False]), n_relevant=0)
        np.testing.assert_allclose(points, 0.0)


class TestAtK:
    def test_precision_at_k(self):
        assert precision_at_k(ALTERNATING, 2) == pytest.approx(0.5)
        assert precision_at_k(PERFECT, 5) == pytest.approx(1.0)
        assert precision_at_k(WORST, 5) == pytest.approx(0.0)

    def test_recall_at_k(self):
        assert recall_at_k(PERFECT, 5) == pytest.approx(1.0)
        assert recall_at_k(PERFECT, 2) == pytest.approx(0.4)

    def test_invalid_k(self):
        with pytest.raises(EvaluationError):
            precision_at_k(PERFECT, 0)
        with pytest.raises(EvaluationError):
            recall_at_k(PERFECT, 11)


class TestAveragePrecision:
    def test_perfect_is_one(self):
        assert average_precision(PERFECT) == pytest.approx(1.0)

    def test_worst_case(self):
        # Relevant items at ranks 6..10: AP = mean(1/6, 2/7, ..., 5/10).
        expected = np.mean([1 / 6, 2 / 7, 3 / 8, 4 / 9, 5 / 10])
        assert average_precision(WORST) == pytest.approx(expected)

    def test_monotone_under_improvement(self):
        worse = np.array([False, True, True, False])
        better = np.array([True, True, False, False])
        assert average_precision(better) > average_precision(worse)

    def test_zero_when_nothing_relevant(self):
        assert average_precision(np.array([False, False])) == pytest.approx(0.0)

    def test_respects_external_total(self):
        partial = np.array([True, True])
        assert average_precision(partial, n_relevant=4) == pytest.approx(0.5)


class TestRecallBand:
    def test_perfect_band(self):
        assert precision_in_recall_band(PERFECT, 0.3, 0.4) == pytest.approx(1.0)

    def test_band_average(self):
        # relevance: T F T F ... recall after k hits: k/5.
        value = precision_in_recall_band(ALTERNATING, 0.3, 0.45)
        # recall 0.4 is reached at index 6 (4th hit at position 7): check in
        # [0,1] and consistent with the curve.
        assert 0.0 < value <= 1.0

    def test_unreachable_band_zero(self):
        partial = np.array([True, False], dtype=bool)
        assert precision_in_recall_band(partial, 0.8, 0.9, n_relevant=10) == 0.0

    def test_jumped_band_uses_first_point_past(self):
        # Only one relevant item; recall jumps 0 -> 1 at its position,
        # skipping the [0.3, 0.4] band entirely.
        relevance = np.array([False, True, False])
        value = precision_in_recall_band(relevance, 0.3, 0.4)
        assert value == pytest.approx(0.5)  # precision at the jump point

    def test_invalid_band_rejected(self):
        with pytest.raises(EvaluationError):
            precision_in_recall_band(PERFECT, 0.5, 0.3)
        with pytest.raises(EvaluationError):
            precision_in_recall_band(PERFECT, -0.1, 0.4)


class TestRandomBaseline:
    def test_scene_database_base_rate(self):
        # Paper: "for our natural scene database, it would be a flat line
        # at 0.2" (100 relevant of 500).
        assert random_baseline_precision(100, 500) == pytest.approx(0.2)

    def test_invalid_counts(self):
        with pytest.raises(EvaluationError):
            random_baseline_precision(5, 0)
        with pytest.raises(EvaluationError):
            random_baseline_precision(10, 5)
