"""Property-based tests of retrieval-metric invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.eval.curves import PrecisionRecallCurve, RecallCurve
from repro.eval.metrics import (
    average_precision,
    precision_points,
    recall_points,
)


def relevance_arrays(min_size: int = 1, max_size: int = 200):
    return hnp.arrays(
        dtype=np.bool_,
        shape=st.integers(min_value=min_size, max_value=max_size),
        elements=st.booleans(),
    )


@given(relevance_arrays())
@settings(max_examples=200, deadline=None)
def test_precision_in_unit_interval(relevance):
    points = precision_points(relevance)
    assert np.all((points >= 0.0) & (points <= 1.0))


@given(relevance_arrays())
@settings(max_examples=200, deadline=None)
def test_recall_monotone_nondecreasing(relevance):
    points = recall_points(relevance)
    assert np.all(np.diff(points) >= -1e-12)


@given(relevance_arrays())
@settings(max_examples=200, deadline=None)
def test_recall_reaches_one_over_full_ranking(relevance):
    points = recall_points(relevance)
    if relevance.any():
        assert points[-1] == 1.0
    else:
        assert np.all(points == 0.0)


@given(relevance_arrays())
@settings(max_examples=200, deadline=None)
def test_average_precision_bounds(relevance):
    assert 0.0 <= average_precision(relevance) <= 1.0


@given(relevance_arrays(min_size=2))
@settings(max_examples=150, deadline=None)
def test_swapping_adjacent_improvement_helps_ap(relevance):
    """Moving a relevant item one position earlier never lowers AP."""
    relevance = relevance.copy()
    # Find an adjacent (False, True) pair to swap into (True, False).
    for k in range(relevance.size - 1):
        if not relevance[k] and relevance[k + 1]:
            improved = relevance.copy()
            improved[k], improved[k + 1] = True, False
            assert average_precision(improved) >= average_precision(relevance) - 1e-12
            break


@given(relevance_arrays())
@settings(max_examples=150, deadline=None)
def test_perfect_ranking_maximises_ap(relevance):
    n_relevant = int(relevance.sum())
    if n_relevant == 0:
        return
    perfect = np.zeros_like(relevance)
    perfect[:n_relevant] = True
    assert average_precision(perfect) >= average_precision(relevance) - 1e-12
    assert average_precision(perfect) == 1.0


@given(relevance_arrays())
@settings(max_examples=100, deadline=None)
def test_curve_objects_consistent_with_metrics(relevance):
    recall_curve = RecallCurve(relevance)
    pr_curve = PrecisionRecallCurve(relevance)
    np.testing.assert_allclose(recall_curve.points[1], recall_points(relevance))
    np.testing.assert_allclose(pr_curve.points[1], precision_points(relevance))


@given(relevance_arrays(), st.integers(min_value=0, max_value=500))
@settings(max_examples=150, deadline=None)
def test_external_total_scales_recall(relevance, extra):
    hits = int(relevance.sum())
    total = hits + extra
    if total == 0:
        return
    points = recall_points(relevance, n_relevant=total)
    assert points[-1] <= 1.0
    np.testing.assert_allclose(points[-1], hits / total)
