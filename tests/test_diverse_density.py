"""Unit tests for the multi-restart trainer (repro.core.diverse_density)."""

import numpy as np
import pytest

from repro.bags.bag import Bag, BagSet
from repro.core.diverse_density import DiverseDensityTrainer, TrainerConfig
from repro.core.schemes import IdenticalWeightsScheme
from repro.errors import BagError, TrainingError
from tests.conftest import make_planted_bag_set


class TestTrainerConfig:
    def test_defaults(self):
        config = TrainerConfig()
        assert config.scheme == "inequality"
        assert config.start_bag_subset is None
        assert config.start_instance_stride == 1

    def test_invalid_subset(self):
        with pytest.raises(TrainingError):
            TrainerConfig(start_bag_subset=0)

    def test_invalid_stride(self):
        with pytest.raises(TrainingError):
            TrainerConfig(start_instance_stride=0)

    def test_resolve_named_scheme(self):
        scheme = TrainerConfig(scheme="identical").resolve_scheme()
        assert scheme.name == "identical"

    def test_resolve_scheme_object_passthrough(self):
        scheme = IdenticalWeightsScheme()
        assert TrainerConfig(scheme=scheme).resolve_scheme() is scheme


class TestTraining:
    def test_recovers_planted_concept(self):
        bag_set, concept = make_planted_bag_set(n_dims=4, seed=11)
        trainer = DiverseDensityTrainer(
            TrainerConfig(scheme="identical", max_iterations=150)
        )
        result = trainer.train(bag_set)
        assert np.linalg.norm(result.concept.t - concept) < 0.5

    def test_start_count_all_bags(self):
        bag_set, _ = make_planted_bag_set(
            n_positive=3, instances_per_bag=4, seed=12
        )
        trainer = DiverseDensityTrainer(TrainerConfig(scheme="identical"))
        result = trainer.train(bag_set)
        assert result.n_starts == 3 * 4

    def test_subset_reduces_starts(self):
        bag_set, _ = make_planted_bag_set(
            n_positive=5, instances_per_bag=4, seed=13
        )
        trainer = DiverseDensityTrainer(
            TrainerConfig(scheme="identical", start_bag_subset=2, seed=3)
        )
        result = trainer.train(bag_set)
        assert result.n_starts == 2 * 4
        start_bags = {record.bag_id for record in result.starts}
        assert len(start_bags) == 2

    def test_stride_reduces_starts(self):
        bag_set, _ = make_planted_bag_set(
            n_positive=2, instances_per_bag=6, seed=14
        )
        trainer = DiverseDensityTrainer(
            TrainerConfig(scheme="identical", start_instance_stride=3)
        )
        result = trainer.train(bag_set)
        assert result.n_starts == 2 * 2

    def test_subset_seed_deterministic(self):
        bag_set, _ = make_planted_bag_set(n_positive=5, seed=15)
        config = TrainerConfig(scheme="identical", start_bag_subset=2, seed=9)
        first = DiverseDensityTrainer(config).train(bag_set)
        second = DiverseDensityTrainer(config).train(bag_set)
        assert [r.bag_id for r in first.starts] == [r.bag_id for r in second.starts]

    def test_subset_larger_than_bags_uses_all(self):
        bag_set, _ = make_planted_bag_set(n_positive=2, instances_per_bag=3, seed=16)
        trainer = DiverseDensityTrainer(
            TrainerConfig(scheme="identical", start_bag_subset=10)
        )
        assert trainer.train(bag_set).n_starts == 6

    def test_best_start_matches_concept_nll(self):
        bag_set, _ = make_planted_bag_set(seed=17)
        result = DiverseDensityTrainer(TrainerConfig(scheme="identical")).train(bag_set)
        assert result.best_start.value == pytest.approx(result.concept.nll)

    def test_no_positive_bags_raises(self):
        bag_set = BagSet([Bag(instances=np.zeros((2, 3)), label=False, bag_id="n")])
        trainer = DiverseDensityTrainer(TrainerConfig(scheme="identical"))
        with pytest.raises(BagError):
            trainer.train(bag_set)

    def test_metadata_recorded(self):
        bag_set, _ = make_planted_bag_set(seed=18)
        result = DiverseDensityTrainer(TrainerConfig(scheme="identical")).train(bag_set)
        metadata = result.concept.metadata
        assert metadata["n_positive_bags"] == bag_set.n_positive
        assert metadata["n_negative_bags"] == bag_set.n_negative
        assert metadata["n_starts"] == result.n_starts
        assert result.elapsed_seconds > 0

    def test_scheme_name_recorded(self):
        bag_set, _ = make_planted_bag_set(seed=19)
        result = DiverseDensityTrainer(
            TrainerConfig(scheme="inequality", beta=0.5, max_iterations=30)
        ).train(bag_set)
        assert "inequality" in result.concept.scheme

    def test_deterministic_training(self):
        bag_set, _ = make_planted_bag_set(seed=20)
        config = TrainerConfig(scheme="identical", max_iterations=60)
        first = DiverseDensityTrainer(config).train(bag_set)
        second = DiverseDensityTrainer(config).train(bag_set)
        np.testing.assert_allclose(first.concept.t, second.concept.t)
        assert first.concept.nll == pytest.approx(second.concept.nll)

    def test_more_starts_never_worse(self):
        # The full restart set must achieve an NLL at least as good as any
        # subset (it is a superset of candidate optima).
        bag_set, _ = make_planted_bag_set(n_positive=4, seed=21)
        full = DiverseDensityTrainer(
            TrainerConfig(scheme="identical", max_iterations=120)
        ).train(bag_set)
        subset = DiverseDensityTrainer(
            TrainerConfig(
                scheme="identical", max_iterations=120, start_bag_subset=1, seed=0
            )
        ).train(bag_set)
        assert full.concept.nll <= subset.concept.nll + 1e-6

    def test_empty_training_result_best_start_raises(self):
        from repro.core.diverse_density import TrainingResult
        from repro.core.concept import LearnedConcept

        result = TrainingResult(
            concept=LearnedConcept(t=np.zeros(2), w=np.ones(2), nll=0.0)
        )
        with pytest.raises(TrainingError):
            result.best_start
