"""Unit tests for repro.imaging.image: gray conversion and GrayImage."""

import numpy as np
import pytest

from repro.errors import ImageFormatError
from repro.imaging.image import GrayImage, to_gray


class TestToGray:
    def test_gray_float_passthrough(self):
        plane = np.linspace(0, 1, 12).reshape(3, 4)
        out = to_gray(plane)
        assert out.shape == (3, 4)
        np.testing.assert_allclose(out, plane)

    def test_uint8_gray_scaled_to_unit(self):
        plane = np.array([[0, 255], [128, 64]], dtype=np.uint8)
        out = to_gray(plane)
        assert out.max() == pytest.approx(1.0)
        assert out.min() == pytest.approx(0.0)
        assert out[1, 0] == pytest.approx(128 / 255)

    def test_rgb_uses_luma_weights(self):
        rgb = np.zeros((2, 2, 3))
        rgb[..., 0] = 1.0  # pure red
        out = to_gray(rgb)
        np.testing.assert_allclose(out, 0.299)

    def test_rgb_green_weight(self):
        rgb = np.zeros((2, 2, 3))
        rgb[..., 1] = 1.0
        np.testing.assert_allclose(to_gray(rgb), 0.587)

    def test_rgb_white_is_one(self):
        rgb = np.ones((4, 4, 3))
        np.testing.assert_allclose(to_gray(rgb), 1.0, atol=1e-12)

    def test_rgb_uint8(self):
        rgb = np.full((2, 2, 3), 255, dtype=np.uint8)
        np.testing.assert_allclose(to_gray(rgb), 1.0)

    def test_rejects_1d(self):
        with pytest.raises(ImageFormatError):
            to_gray(np.zeros(5))

    def test_rejects_wrong_channel_count(self):
        with pytest.raises(ImageFormatError):
            to_gray(np.zeros((4, 4, 4)))

    def test_rejects_out_of_range_floats(self):
        with pytest.raises(ImageFormatError):
            to_gray(np.full((3, 3), 2.5))

    def test_rejects_negative_floats(self):
        with pytest.raises(ImageFormatError):
            to_gray(np.full((3, 3), -0.1))


class TestGrayImage:
    def test_basic_construction(self):
        image = GrayImage(pixels=np.zeros((4, 5)) + 0.5, image_id="x", category="cat")
        assert image.shape == (4, 5)
        assert image.rows == 4
        assert image.cols == 5
        assert image.image_id == "x"
        assert image.category == "cat"

    def test_rejects_3d_in_direct_constructor(self):
        with pytest.raises(ImageFormatError):
            GrayImage(pixels=np.zeros((4, 4, 3)))

    def test_rejects_tiny_images(self):
        with pytest.raises(ImageFormatError):
            GrayImage(pixels=np.zeros((1, 5)))

    def test_from_array_keeps_rgb(self):
        rgb = np.random.default_rng(0).uniform(size=(6, 6, 3))
        image = GrayImage.from_array(rgb, image_id="a")
        assert image.rgb is not None
        np.testing.assert_allclose(image.rgb, rgb)

    def test_from_array_gray_has_no_rgb(self):
        image = GrayImage.from_array(np.zeros((6, 6)))
        assert image.rgb is None

    def test_mirror_flips_columns(self):
        plane = np.arange(12, dtype=float).reshape(3, 4) / 12.0
        image = GrayImage(pixels=plane)
        mirrored = image.mirrored()
        np.testing.assert_allclose(mirrored.pixels, plane[:, ::-1])

    def test_double_mirror_is_identity(self):
        plane = np.random.default_rng(1).uniform(size=(5, 7))
        image = GrayImage(pixels=plane)
        np.testing.assert_allclose(image.mirrored().mirrored().pixels, plane)

    def test_mirror_preserves_rgb(self):
        rgb = np.random.default_rng(2).uniform(size=(4, 6, 3))
        image = GrayImage.from_array(rgb)
        mirrored = image.mirrored()
        np.testing.assert_allclose(mirrored.rgb, rgb[:, ::-1])

    def test_crop_extracts_block(self):
        plane = np.arange(36, dtype=float).reshape(6, 6) / 36.0
        image = GrayImage(pixels=plane)
        block = image.crop(1, 2, 3, 2)
        np.testing.assert_allclose(block, plane[1:4, 2:4])

    def test_crop_out_of_bounds_raises(self):
        image = GrayImage(pixels=np.zeros((4, 4)))
        with pytest.raises(ImageFormatError):
            image.crop(2, 2, 4, 4)

    def test_crop_negative_raises(self):
        image = GrayImage(pixels=np.zeros((4, 4)))
        with pytest.raises(ImageFormatError):
            image.crop(-1, 0, 2, 2)

    def test_crop_zero_size_raises(self):
        image = GrayImage(pixels=np.zeros((4, 4)))
        with pytest.raises(ImageFormatError):
            image.crop(0, 0, 0, 2)

    def test_variance_of_constant_is_zero(self):
        image = GrayImage(pixels=np.full((4, 4), 0.3))
        assert image.variance() == pytest.approx(0.0)

    def test_variance_matches_numpy(self):
        plane = np.random.default_rng(3).uniform(size=(8, 8))
        image = GrayImage(pixels=plane)
        assert image.variance() == pytest.approx(float(plane.var()))

    def test_pixels_clipped_from_uint8(self):
        image = GrayImage(pixels=np.array([[0, 255], [10, 200]], dtype=np.uint8))
        assert image.pixels.dtype == np.float64
        assert image.pixels.max() <= 1.0
