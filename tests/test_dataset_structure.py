"""Structural tests of the synthetic datasets.

The substitutions in DESIGN.md promise specific *properties*, not just
pretty pictures: scene categories must carry region-local discriminative
structure with cluttered backgrounds, and object categories must sit on
near-uniform backgrounds with low intra-class variation.  These tests pin
the properties the reproduction's claims depend on.
"""

import numpy as np
import pytest

from repro.datasets.base import category_rng
from repro.datasets.objects import OBJECT_CATEGORIES, render_object
from repro.datasets.scenes import SCENE_CATEGORIES, render_scene
from repro.imaging.correlation import image_correlation
from repro.imaging.image import to_gray


def scene_gray(category: str, index: int, seed: int = 0) -> np.ndarray:
    return to_gray(render_scene(category, category_rng(seed, category, index), (64, 64)))


def object_gray(category: str, index: int, seed: int = 0) -> np.ndarray:
    return to_gray(render_object(category, category_rng(seed, category, index), (64, 64)))


class TestSceneDiscriminativeStructure:
    def test_waterfall_has_bright_vertical_streak(self):
        for index in range(6):
            gray = scene_gray("waterfall", index)
            body = gray[20:, :]  # below the sky band
            column_means = body.mean(axis=0)
            # The cascade column is clearly brighter than the rock median.
            assert column_means.max() > np.median(column_means) + 0.1

    def test_sunset_has_bright_disc_over_dark_ground(self):
        for index in range(6):
            gray = scene_gray("sunset", index)
            bottom = gray[-12:, :].mean()
            peak = gray[: int(0.8 * 64), :].max()
            assert peak > 0.75  # the sun
            assert bottom < 0.35  # the silhouette

    def test_field_is_horizontally_banded(self):
        for index in range(6):
            gray = scene_gray("field", index)
            row_var = gray.mean(axis=1).var()  # variation across rows
            col_var = gray.mean(axis=0).var()  # variation across columns
            assert row_var > col_var  # bands are horizontal

    def test_lake_has_bright_horizontal_band(self):
        for index in range(6):
            gray = scene_gray("lake_river", index)
            row_means = gray.mean(axis=1)
            middle = row_means[24:56]
            assert middle.max() > row_means[-4:].mean() + 0.1  # water > near bank

    def test_mountain_is_darker_mid_frame_than_sky(self):
        for index in range(6):
            gray = scene_gray("mountain", index)
            sky = gray[:8, :].mean()
            peaks = gray[24:40, :].min()
            assert peaks < sky  # dark rock against bright sky

    def test_backgrounds_vary_across_instances(self):
        # Clutter: whole-image correlation between instances of the same
        # category is not uniformly high.
        for category in SCENE_CATEGORIES:
            correlations = [
                image_correlation(
                    scene_gray(category, i), scene_gray(category, i + 1), 10
                )
                for i in range(0, 6, 2)
            ]
            assert min(correlations) < 0.97, category


class TestObjectUniformity:
    @pytest.mark.parametrize("category", OBJECT_CATEGORIES)
    def test_corners_are_background(self, category):
        gray = object_gray(category, 0)
        corners = np.concatenate(
            [gray[:5, :5].ravel(), gray[:5, -5:].ravel(), gray[-5:, :5].ravel()]
        )
        assert corners.mean() > 0.7  # light, near-uniform background
        assert corners.std() < 0.1

    def test_low_intra_class_variation(self):
        # Same-category object images correlate strongly (h=10), mirroring
        # the paper's "little variation among objects".
        for category in ("car", "camera", "pants", "clock"):
            value = image_correlation(
                object_gray(category, 0), object_gray(category, 1), 10
            )
            assert value > 0.6, category

    def test_objects_differ_across_categories(self):
        value = image_correlation(object_gray("car", 0), object_gray("lamp", 0), 10)
        assert value < 0.6

    def test_all_categories_render_distinct_images(self):
        grays = {c: object_gray(c, 0) for c in OBJECT_CATEGORIES}
        names = list(OBJECT_CATEGORIES)
        for i in range(0, len(names), 5):
            for j in range(i + 1, len(names), 5):
                diff = np.abs(grays[names[i]] - grays[names[j]]).max()
                assert diff > 0.05, (names[i], names[j])


class TestSeedIsolation:
    def test_categories_do_not_share_streams(self):
        # Changing one category's index must not change another category's
        # image under the same master seed.
        before = scene_gray("sunset", 0, seed=3)
        _ = scene_gray("waterfall", 5, seed=3)
        after = scene_gray("sunset", 0, seed=3)
        np.testing.assert_array_equal(before, after)

    def test_master_seed_changes_everything(self):
        a = scene_gray("field", 0, seed=1)
        b = scene_gray("field", 0, seed=2)
        assert np.abs(a - b).max() > 0.01
