"""Shared fixtures for the test suite.

Expensive fixtures (featurised databases, planted MIL problems) are session
scoped; everything in them is deterministic, so sharing is safe.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bags.bag import Bag, BagSet
from repro.datasets.loader import quick_database
from repro.imaging.features import FeatureConfig
from repro.imaging.regions import region_family


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    """A seeded generator for miscellaneous randomness."""
    return np.random.default_rng(12345)


def make_planted_bag_set(
    n_dims: int = 4,
    n_positive: int = 5,
    n_negative: int = 4,
    instances_per_bag: int = 6,
    concept_scale: float = 4.0,
    noise: float = 0.15,
    seed: int = 42,
) -> tuple[BagSet, np.ndarray]:
    """A synthetic MIL problem with a known planted concept point.

    Every positive bag holds one instance near the planted point plus
    distractors; negative bags hold only distractors.  Returns the bag set
    and the planted point.
    """
    generator = np.random.default_rng(seed)
    concept = generator.uniform(-1.0, 1.0, size=n_dims)
    bag_set = BagSet()
    for bag_index in range(n_positive):
        distractors = generator.uniform(-1, 1, size=(instances_per_bag - 1, n_dims))
        distractors *= concept_scale  # far from the concept
        hit = concept + generator.normal(0.0, noise, size=n_dims)
        instances = np.vstack([distractors[: instances_per_bag // 2], hit,
                               distractors[instances_per_bag // 2 :]])
        bag_set.add(Bag(instances=instances, label=True, bag_id=f"pos-{bag_index}"))
    for bag_index in range(n_negative):
        distractors = generator.uniform(-1, 1, size=(instances_per_bag, n_dims))
        distractors *= concept_scale
        # Reject distractors that land near the concept.
        too_close = np.linalg.norm(distractors - concept, axis=1) < 1.0
        distractors[too_close] += 3.0
        bag_set.add(Bag(instances=distractors, label=False, bag_id=f"neg-{bag_index}"))
    return bag_set, concept


@pytest.fixture(scope="session")
def planted() -> tuple[BagSet, np.ndarray]:
    """The default planted MIL problem."""
    return make_planted_bag_set()


@pytest.fixture(scope="session")
def tiny_scene_db():
    """A small featurised scene database shared across tests."""
    config = FeatureConfig(resolution=6, region_family=region_family("small9"))
    database = quick_database(
        "scenes", images_per_category=6, size=(48, 48), seed=2, feature_config=config
    )
    database.precompute_features()
    return database


@pytest.fixture(scope="session")
def tiny_object_db():
    """A small featurised object database shared across tests."""
    config = FeatureConfig(resolution=6, region_family=region_family("small9"))
    database = quick_database(
        "objects", images_per_category=4, size=(48, 48), seed=2, feature_config=config
    )
    database.precompute_features()
    return database
